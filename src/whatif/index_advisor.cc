#include "whatif/index_advisor.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace zerodb::whatif {

IndexAdvisor::IndexAdvisor(zeroshot::ZeroShotEstimator* estimator,
                           Options options)
    : estimator_(estimator), options_(options) {
  ZDB_CHECK(estimator != nullptr);
}

std::vector<IndexCandidate> IndexAdvisor::EnumerateCandidates(
    const datagen::DatabaseEnv& env,
    const std::vector<plan::QuerySpec>& workload) const {
  std::vector<IndexCandidate> candidates;
  auto add = [&](const std::string& table, size_t column_index) {
    const storage::Table* t = env.db->FindTable(table);
    if (t == nullptr) return;
    const std::string& column = t->schema().column(column_index).name;
    for (const IndexCandidate& existing : candidates) {
      if (existing.table == table && existing.column_index == column_index) {
        return;
      }
    }
    // Skip columns that already have a real index.
    if (env.db->FindIndex(table, column_index) != nullptr) return;
    candidates.push_back(IndexCandidate{table, column, column_index});
  };

  for (const plan::QuerySpec& query : workload) {
    for (const plan::FilterSpec& filter : query.filters) {
      for (size_t slot : filter.predicate.ReferencedSlots()) {
        add(filter.table, slot);
      }
    }
    for (const plan::JoinSpec& join : query.joins) {
      const storage::Table* left = env.db->FindTable(join.left_table);
      const storage::Table* right = env.db->FindTable(join.right_table);
      if (left != nullptr) {
        add(join.left_table, *left->schema().FindColumn(join.left_column));
      }
      if (right != nullptr) {
        add(join.right_table, *right->schema().FindColumn(join.right_column));
      }
    }
  }
  return candidates;
}

Millis IndexAdvisor::PredictWorkloadMs(
    const datagen::DatabaseEnv& env,
    const std::vector<plan::QuerySpec>& workload,
    const std::vector<IndexCandidate>& indexes) {
  optimizer::PlannerOptions planner_options;
  for (const IndexCandidate& index : indexes) {
    planner_options.hypothetical_indexes.push_back(
        optimizer::HypotheticalIndex{index.table, index.column_index});
  }
  // One batched call plans every query and prices all cache misses in a
  // single forward pass; the greedy loop in Recommend re-prices
  // mostly-identical plans, so most of these come straight from the
  // estimator's fingerprint cache.
  std::vector<StatusOr<Millis>> estimates =
      estimator_->EstimateQueryBatchMs(env, workload, planner_options);
  Millis total;
  for (const StatusOr<Millis>& ms : estimates) {
    if (!ms.ok()) continue;  // unplannable queries contribute nothing
    total += *ms;
  }
  return total;
}

AdvisorResult IndexAdvisor::Recommend(
    const datagen::DatabaseEnv& env,
    const std::vector<plan::QuerySpec>& workload) {
  AdvisorResult result;
  const obs::PredictionQualityMonitor* quality = estimator_->quality_monitor();
  result.quality_degraded = quality != nullptr && quality->drifting();
  const double min_improvement = result.quality_degraded
                                     ? options_.degraded_min_improvement
                                     : options_.min_improvement;
  if (result.quality_degraded) {
    ZDB_LOG(Warning) << "advisor: estimator prediction quality is drifting "
                        "(ewma q-error "
                     << quality->EwmaQError() << " vs reference "
                     << quality->ReferenceQError()
                     << "); requiring >= " << min_improvement
                     << "x predicted improvement per index";
  }
  result.baseline_total_ms = PredictWorkloadMs(env, workload, {});
  Millis current = result.baseline_total_ms;

  std::vector<IndexCandidate> remaining = EnumerateCandidates(env, workload);
  while (result.chosen.size() < options_.max_indexes && !remaining.empty()) {
    Millis best_ms = current;
    size_t best_index = remaining.size();
    for (size_t c = 0; c < remaining.size(); ++c) {
      std::vector<IndexCandidate> trial = result.chosen;
      trial.push_back(remaining[c]);
      Millis ms = PredictWorkloadMs(env, workload, trial);
      if (ms < best_ms) {
        best_ms = ms;
        best_index = c;
      }
    }
    // ms / ms is the dimensionless improvement factor compared against the
    // (likewise dimensionless) min_improvement bar.
    if (best_index == remaining.size() ||
        current / std::max(best_ms, Millis(1e-9)) < min_improvement) {
      break;  // no candidate helps enough
    }
    result.chosen.push_back(remaining[best_index]);
    remaining.erase(remaining.begin() + static_cast<long>(best_index));
    current = best_ms;
    ZDB_LOG(Debug) << "advisor chose " << result.chosen.back().table << "."
                   << result.chosen.back().column << " -> " << current.value()
                   << "ms";
  }
  result.final_total_ms = current;
  return result;
}

}  // namespace zerodb::whatif
