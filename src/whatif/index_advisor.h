#ifndef ZERODB_WHATIF_INDEX_ADVISOR_H_
#define ZERODB_WHATIF_INDEX_ADVISOR_H_

#include <string>
#include <vector>

#include "datagen/corpus.h"
#include "plan/query.h"
#include "zeroshot/estimator.h"

namespace zerodb::whatif {

/// A candidate (or chosen) index.
struct IndexCandidate {
  std::string table;
  std::string column;
  size_t column_index = 0;
};

struct AdvisorResult {
  std::vector<IndexCandidate> chosen;
  Millis baseline_total_ms;   ///< predicted workload cost, no new indexes
  Millis final_total_ms;      ///< predicted cost with chosen indexes
  /// True when the estimator's quality monitor reported prediction drift at
  /// recommendation time: the search then required degraded_min_improvement
  /// and these recommendations deserve extra scrutiny.
  bool quality_degraded = false;
};

/// The paper's Section 4.1 application: physical design tuning driven by a
/// zero-shot cost model in What-If mode. Candidate indexes are evaluated
/// *hypothetically* — the planner plans as if the index existed and the
/// zero-shot model predicts the runtime — so no index is built and no query
/// is executed on the target database during the search.
struct IndexAdvisorOptions {
  size_t max_indexes = 3;
  /// Keep a candidate only if it improves predicted workload time by at
  /// least this factor (1.0 = any improvement).
  double min_improvement = 1.005;
  /// Stricter improvement bar applied while the estimator's online quality
  /// monitor reports drift: when the model's live q-error has degraded, tiny
  /// predicted wins are likely noise, so only clear wins survive.
  double degraded_min_improvement = 1.05;
};

class IndexAdvisor {
 public:
  using Options = IndexAdvisorOptions;

  explicit IndexAdvisor(zeroshot::ZeroShotEstimator* estimator,
                        Options options = Options());

  /// Candidate columns: every attribute column referenced by a predicate
  /// plus every join column of the workload.
  std::vector<IndexCandidate> EnumerateCandidates(
      const datagen::DatabaseEnv& env,
      const std::vector<plan::QuerySpec>& workload) const;

  /// Greedy selection: repeatedly add the hypothetical index with the best
  /// predicted improvement.
  AdvisorResult Recommend(const datagen::DatabaseEnv& env,
                          const std::vector<plan::QuerySpec>& workload);

 private:
  /// Predicted total workload runtime under a set of hypothetical indexes.
  Millis PredictWorkloadMs(const datagen::DatabaseEnv& env,
                           const std::vector<plan::QuerySpec>& workload,
                           const std::vector<IndexCandidate>& indexes);

  zeroshot::ZeroShotEstimator* estimator_;
  Options options_;
};

}  // namespace zerodb::whatif

#endif  // ZERODB_WHATIF_INDEX_ADVISOR_H_
