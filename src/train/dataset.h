#ifndef ZERODB_TRAIN_DATASET_H_
#define ZERODB_TRAIN_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/corpus.h"
#include "exec/executor.h"
#include "models/record.h"
#include "optimizer/optimizer.h"
#include "plan/physical.h"
#include "plan/query.h"
#include "runtime/simulator.h"
#include "workload/generator.h"

namespace zerodb::train {

/// The labeled example type is defined in models/record.h (the layer below,
/// so models never has to include train/); this alias preserves the
/// train::QueryRecord spelling for all collection-side code.
using QueryRecord = models::QueryRecord;

struct CollectOptions {
  exec::ExecutorOptions executor;
  optimizer::PlannerOptions planner;
  runtime::MachineProfile machine;
  uint64_t noise_seed = 1234;
};

/// Plans, executes and labels the given queries against `env`. Queries that
/// the executor rejects (row-cap) are skipped, mirroring how timed-out
/// training queries would be dropped in the paper's collection runs.
std::vector<QueryRecord> CollectRecords(const datagen::DatabaseEnv& env,
                                        const std::vector<plan::QuerySpec>& queries,
                                        const CollectOptions& options);

/// Draws random queries from the generator until `count` records collected
/// (or 3x count attempts exhausted).
std::vector<QueryRecord> CollectRandomWorkload(const datagen::DatabaseEnv& env,
                                               const workload::WorkloadConfig& config,
                                               size_t count, uint64_t seed,
                                               const CollectOptions& options);

/// Non-owning views used by trainers/models.
std::vector<const QueryRecord*> MakeView(const std::vector<QueryRecord>& records);

}  // namespace zerodb::train

#endif  // ZERODB_TRAIN_DATASET_H_
