#ifndef ZERODB_TRAIN_DATASET_H_
#define ZERODB_TRAIN_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/corpus.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "plan/physical.h"
#include "plan/query.h"
#include "runtime/simulator.h"
#include "workload/generator.h"

namespace zerodb::train {

/// One labeled training/evaluation example: a query, its optimized physical
/// plan (annotated with estimated AND true cardinalities), the measured
/// (simulated) runtime, and the optimizer's cost — everything any of the
/// four cost models needs.
struct QueryRecord {
  const datagen::DatabaseEnv* env = nullptr;  ///< owning corpus outlives records
  std::string db_name;
  plan::QuerySpec query;
  plan::PhysicalPlan plan;
  double runtime_ms = 0.0;
  double opt_cost = 0.0;
};

struct CollectOptions {
  exec::ExecutorOptions executor;
  optimizer::PlannerOptions planner;
  runtime::MachineProfile machine;
  uint64_t noise_seed = 1234;
};

/// Plans, executes and labels the given queries against `env`. Queries that
/// the executor rejects (row-cap) are skipped, mirroring how timed-out
/// training queries would be dropped in the paper's collection runs.
std::vector<QueryRecord> CollectRecords(const datagen::DatabaseEnv& env,
                                        const std::vector<plan::QuerySpec>& queries,
                                        const CollectOptions& options);

/// Draws random queries from the generator until `count` records collected
/// (or 3x count attempts exhausted).
std::vector<QueryRecord> CollectRandomWorkload(const datagen::DatabaseEnv& env,
                                               const workload::WorkloadConfig& config,
                                               size_t count, uint64_t seed,
                                               const CollectOptions& options);

/// Non-owning views used by trainers/models.
std::vector<const QueryRecord*> MakeView(const std::vector<QueryRecord>& records);

}  // namespace zerodb::train

#endif  // ZERODB_TRAIN_DATASET_H_
