#include "train/trainer.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "nn/lr_schedule.h"
#include "nn/optimizer.h"
#include "nn/validate.h"
#include "obs/metrics.h"

namespace zerodb::train {

TrainResult TrainModel(models::NeuralCostModel* model,
                       const std::vector<const QueryRecord*>& records,
                       const TrainerOptions& options) {
  ZDB_CHECK(model != nullptr);
  ZDB_CHECK(!records.empty());

  Rng rng(options.seed);
  std::vector<const QueryRecord*> shuffled = records;
  rng.Shuffle(&shuffled);

  // Split train / validation.
  size_t val_count = static_cast<size_t>(
      static_cast<double>(shuffled.size()) * options.validation_fraction);
  if (shuffled.size() >= 20 && val_count == 0) val_count = 1;
  val_count = std::min(val_count, shuffled.size() - 1);
  std::vector<const QueryRecord*> validation(shuffled.begin(),
                                             shuffled.begin() + val_count);
  std::vector<const QueryRecord*> training(shuffled.begin() + val_count,
                                           shuffled.end());

  model->Prepare(training);
  nn::Adam optimizer(model->Parameters(), options.learning_rate, 0.9f, 0.999f,
                     1e-8f, options.weight_decay);

  auto snapshot = [&]() {
    std::vector<std::vector<float>> weights;
    for (const nn::Tensor& p : model->Parameters()) weights.push_back(p.data());
    return weights;
  };
  auto restore = [&](const std::vector<std::vector<float>>& weights) {
    auto params = model->Parameters();
    ZDB_CHECK_EQ(params.size(), weights.size());
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_data() = weights[i];
    }
  };

  TrainResult result;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<std::vector<float>> best_weights = snapshot();
  size_t epochs_since_best = 0;

  std::unique_ptr<nn::LrSchedule> schedule;
  switch (options.lr_schedule) {
    case LrScheduleKind::kConstant:
      schedule = std::make_unique<nn::ConstantLr>(options.learning_rate);
      break;
    case LrScheduleKind::kStepDecay:
      schedule = std::make_unique<nn::StepDecayLr>(
          options.learning_rate, options.lr_decay_factor,
          options.lr_decay_epochs);
      break;
    case LrScheduleKind::kCosine:
      schedule = std::make_unique<nn::CosineLr>(
          options.learning_rate, options.lr_floor, options.max_epochs);
      break;
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* epochs_counter = registry.GetCounter("train.epochs");
  obs::Counter* batches_counter = registry.GetCounter("train.batches");
  obs::Histogram* epoch_us = registry.GetHistogram("train.epoch_us");

  for (size_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    obs::ScopedTimer epoch_timer(registry.enabled() ? epoch_us : nullptr);
    const float learning_rate = schedule->RateForEpoch(epoch);
    optimizer.set_learning_rate(learning_rate);
    rng.Shuffle(&training);
    double epoch_loss = 0.0;
    double grad_norm_sum = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < training.size();
         start += options.batch_size) {
      size_t end = std::min(start + options.batch_size, training.size());
      std::vector<const QueryRecord*> batch(training.begin() + start,
                                            training.begin() + end);
      nn::Tensor loss = model->LossOnBatch(batch, /*training=*/true, &rng);
      ZDB_DCHECK_OK(
          nn::ValidateShape(loss, 1, 1, "trainer forward: batch loss"));
      ZDB_DCHECK_OK(nn::ValidateFinite(loss, "trainer forward: batch loss"));
      optimizer.ZeroGrad();
      loss.Backward();
      ZDB_DCHECK_OK(nn::ValidateFiniteGradients(model->Parameters(),
                                                "trainer backward"));
      grad_norm_sum += optimizer.ClipGradNorm(options.grad_clip_norm);
      optimizer.Step();
      epoch_loss += loss.item();
      ++batches;
    }
    result.final_train_loss =
        epoch_loss / static_cast<double>(std::max<size_t>(batches, 1));
    result.epochs_run = epoch + 1;
    epochs_counter->Add(1);
    batches_counter->Add(static_cast<int64_t>(batches));

    // Validation (falls back to train loss when no validation split).
    double val_loss = result.final_train_loss;
    if (!validation.empty()) {
      val_loss =
          model->LossOnBatch(validation, /*training=*/false, nullptr).item();
    }

    obs::EpochStat stat;
    stat.epoch = epoch + 1;
    stat.train_loss = result.final_train_loss;
    stat.val_loss = val_loss;
    stat.learning_rate = learning_rate;
    stat.grad_norm =
        grad_norm_sum / static_cast<double>(std::max<size_t>(batches, 1));
    result.history.push_back(stat);
    if (options.telemetry != nullptr) {
      // The sink controls its own logging (log_epochs).
      options.telemetry->RecordEpoch(stat);
    } else if (options.verbose) {
      obs::TrainTelemetry::LogEpoch(model->Name(), stat);
    }
    if (val_loss < best_val - 1e-6) {
      best_val = val_loss;
      best_weights = snapshot();
      epochs_since_best = 0;
    } else {
      ++epochs_since_best;
      if (epochs_since_best >= options.early_stop_patience) {
        result.early_stopped = true;
        break;
      }
    }
  }
  restore(best_weights);
  result.best_validation_loss = best_val;
  return result;
}

}  // namespace zerodb::train
