#include "train/trainer.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <memory>

#include "common/check.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "nn/arena.h"
#include "nn/lr_schedule.h"
#include "nn/optimizer.h"
#include "nn/ops.h"
#include "nn/validate.h"
#include "obs/metrics.h"
#include "obs/trace_event.h"

namespace zerodb::train {

namespace {

/// Records per gradient shard. Fixed (never derived from the thread count)
/// so shard boundaries — and therefore every floating-point reduction — are
/// identical for any TrainerOptions::num_threads.
constexpr size_t kShardRecords = 8;

/// One mini-batch's partial gradients, one slot per shard, reduced in
/// ascending shard order after all shards complete.
struct ShardResult {
  double loss = 0.0;  ///< shard loss pre-scaled by shard_size / batch_size
  std::vector<std::vector<float>> grads;  ///< one buffer per parameter
};

/// One shard-running unit: a model (the caller's or a replica), its cached
/// parameter handles, an optional graph arena, and reusable scratch. The
/// trainer builds these once; every per-shard buffer they own reaches steady
/// state after the first batch and is recycled from then on.
struct ShardExecutor {
  models::NeuralCostModel* model = nullptr;
  std::vector<nn::Tensor> params;
  /// Pooled autodiff memory for this executor's shards; null when pooling
  /// is disabled (TrainerOptions::pooled_memory false or ZERODB_ARENA=off).
  std::unique_ptr<nn::GraphArena> arena;
  std::vector<const QueryRecord*> shard;  ///< reused shard record scratch
};

/// Runs one shard on `exec`: zero grads, forward + backward on the shard
/// scaled by shard_size / batch_size (so summing shard losses/gradients
/// reconstructs the batch mean), then harvests the gradient buffers. The
/// whole graph builds inside the executor's arena (when pooling is on) and
/// is recycled via Reset once the gradients are copied out.
void RunShard(ShardExecutor* exec,
              const std::vector<const QueryRecord*>& batch, size_t shard_begin,
              size_t shard_end, size_t batch_size, uint64_t shard_seed,
              ShardResult* out) {
  exec->shard.assign(batch.begin() + static_cast<ptrdiff_t>(shard_begin),
                     batch.begin() + static_cast<ptrdiff_t>(shard_end));
  nn::ArenaGuard guard(exec->arena.get());
  for (nn::Tensor& p : exec->params) p.ZeroGrad();
  Rng shard_rng(shard_seed);
  {
    // Inner scope: every Tensor handle into the arena must die before Reset.
    nn::Tensor loss =
        exec->model->LossOnBatch(exec->shard, /*training=*/true, &shard_rng);
    ZDB_DCHECK_OK(nn::ValidateShape(loss, 1, 1, "trainer forward: shard loss"));
    ZDB_DCHECK_OK(nn::ValidateFinite(loss, "trainer forward: shard loss"));
    nn::Tensor scaled =
        nn::Scale(loss, static_cast<float>(exec->shard.size()) /
                            static_cast<float>(batch_size));
    scaled.Backward();
    out->loss = static_cast<double>(scaled.item());
  }
  out->grads.resize(exec->params.size());
  for (size_t i = 0; i < exec->params.size(); ++i) {
    // Copy-assign into the retained buffer: same parameter sizes every
    // batch, so this reuses capacity instead of reallocating.
    out->grads[i] = exec->params[i].grad();
  }
  if (exec->arena != nullptr) exec->arena->Reset();
}

}  // namespace

TrainResult TrainModel(models::NeuralCostModel* model,
                       const std::vector<const QueryRecord*>& records,
                       const TrainerOptions& options) {
  ZDB_CHECK(model != nullptr);
  ZDB_CHECK(!records.empty());

  Rng rng(options.seed);
  std::vector<const QueryRecord*> shuffled = records;
  rng.Shuffle(&shuffled);

  // Split train / validation.
  size_t val_count = static_cast<size_t>(
      static_cast<double>(shuffled.size()) * options.validation_fraction);
  if (shuffled.size() >= 20 && val_count == 0) val_count = 1;
  val_count = std::min(val_count, shuffled.size() - 1);
  std::vector<const QueryRecord*> validation(shuffled.begin(),
                                             shuffled.begin() + val_count);
  std::vector<const QueryRecord*> training(shuffled.begin() + val_count,
                                           shuffled.end());

  ZDB_CHECK_GT(options.batch_size, 0u);
  model->Prepare(training);
  nn::Adam optimizer(model->Parameters(), options.learning_rate, 0.9f, 0.999f,
                     1e-8f, options.weight_decay);
  std::vector<nn::Tensor> main_params = model->Parameters();

  // Shard-parallel gradient setup. Replicas are cloned after Prepare so they
  // carry the fitted normalization; parameter values are re-synced from the
  // caller's model before every batch (Step changes them). A model whose
  // CloneReplica returns nullptr trains serially — on the identical sharded
  // arithmetic, so the loss history does not depend on this fallback.
  size_t want_threads = options.num_threads;
  if (want_threads == 0) want_threads = ThreadPool::Global()->num_threads();
  const size_t max_shards =
      (options.batch_size + kShardRecords - 1) / kShardRecords;
  const size_t executors =
      std::max<size_t>(1, std::min(want_threads, max_shards));
  std::vector<std::unique_ptr<models::NeuralCostModel>> replicas;
  std::vector<std::vector<nn::Tensor>> replica_params;
  while (replicas.size() + 1 < executors) {
    std::unique_ptr<models::NeuralCostModel> replica = model->CloneReplica();
    if (replica == nullptr) {
      replicas.clear();
      replica_params.clear();
      break;
    }
    replica_params.push_back(replica->Parameters());
    replicas.push_back(std::move(replica));
  }
  ThreadPool* shard_pool = replicas.empty() ? nullptr : ThreadPool::Global();

  // One ShardExecutor per model (the caller's plus the replicas), each with
  // its own GraphArena when pooling is enabled. Arenas are per-executor, not
  // per-thread: the executor free-list below hands a model *and* its arena
  // to exactly one worker at a time, so arena access is single-threaded by
  // construction (the mutex hand-off orders it).
  const bool pooled = options.pooled_memory && nn::ArenaEnabled();
  std::vector<ShardExecutor> shard_executors(1 + replicas.size());
  shard_executors[0].model = model;
  shard_executors[0].params = main_params;
  for (size_t r = 0; r < replicas.size(); ++r) {
    shard_executors[r + 1].model = replicas[r].get();
    shard_executors[r + 1].params = replica_params[r];
  }
  for (ShardExecutor& shard_exec : shard_executors) {
    if (pooled) shard_exec.arena = std::make_unique<nn::GraphArena>();
  }

  // Blocking free list of shard executors. Which executor runs which shard
  // is scheduling-dependent, but all executors hold bit-identical
  // parameters, so shard results are not.
  struct ExecutorPool {
    Mutex mu;
    CondVar cv;
    std::vector<ShardExecutor*> free_executors ZDB_GUARDED_BY(mu);
  };
  ExecutorPool exec;
  {
    MutexLock lock(&exec.mu);
    for (ShardExecutor& shard_exec : shard_executors) {
      exec.free_executors.push_back(&shard_exec);
    }
  }
  auto acquire_executor = [&exec]() {
    MutexLock lock(&exec.mu);
    while (exec.free_executors.empty()) exec.cv.Wait(&exec.mu);
    ShardExecutor* e = exec.free_executors.back();
    exec.free_executors.pop_back();
    return e;
  };
  auto release_executor = [&exec](ShardExecutor* e) {
    {
      MutexLock lock(&exec.mu);
      exec.free_executors.push_back(e);
    }
    exec.cv.NotifyOne();
  };

  auto snapshot = [&]() {
    std::vector<std::vector<float>> weights;
    for (const nn::Tensor& p : model->Parameters()) weights.push_back(p.data());
    return weights;
  };
  auto restore = [&](const std::vector<std::vector<float>>& weights) {
    auto params = model->Parameters();
    ZDB_CHECK_EQ(params.size(), weights.size());
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_data() = weights[i];
    }
  };

  TrainResult result;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<std::vector<float>> best_weights = snapshot();
  size_t epochs_since_best = 0;

  std::unique_ptr<nn::LrSchedule> schedule;
  switch (options.lr_schedule) {
    case LrScheduleKind::kConstant:
      schedule = std::make_unique<nn::ConstantLr>(options.learning_rate);
      break;
    case LrScheduleKind::kStepDecay:
      schedule = std::make_unique<nn::StepDecayLr>(
          options.learning_rate, options.lr_decay_factor,
          options.lr_decay_epochs);
      break;
    case LrScheduleKind::kCosine:
      schedule = std::make_unique<nn::CosineLr>(
          options.learning_rate, options.lr_floor, options.max_epochs);
      break;
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* epochs_counter = registry.GetCounter("train.epochs");
  obs::Counter* batches_counter = registry.GetCounter("train.batches");
  obs::Histogram* epoch_us = registry.GetHistogram("train.epoch_us");

  // Per-batch working state, hoisted out of the loops so batch N reuses
  // batch N-1's capacity: the batch view, the pre-drawn shard seeds, and the
  // shard result slots (kept at max_shards so the final partial batch never
  // shrinks — and re-grows — the gradient buffers inside).
  std::vector<const QueryRecord*> batch;
  batch.reserve(options.batch_size);
  std::vector<uint64_t> shard_seeds;
  shard_seeds.reserve(max_shards);
  std::vector<ShardResult> shard_results(max_shards);

  for (size_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    obs::ScopedTimer epoch_timer(registry.enabled() ? epoch_us : nullptr);
    obs::TimelineScope epoch_scope("train.epoch", "train");
    epoch_scope.AddArg("epoch", static_cast<double>(epoch + 1));
    const float learning_rate = schedule->RateForEpoch(epoch);
    optimizer.set_learning_rate(learning_rate);
    rng.Shuffle(&training);
    double epoch_loss = 0.0;
    double grad_norm_sum = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < training.size();
         start += options.batch_size) {
      size_t end = std::min(start + options.batch_size, training.size());
      obs::TimelineScope batch_scope("train.batch", "train");
      batch.assign(training.begin() + static_cast<ptrdiff_t>(start),
                   training.begin() + static_cast<ptrdiff_t>(end));
      const size_t batch_size = batch.size();
      const size_t num_shards =
          (batch_size + kShardRecords - 1) / kShardRecords;

      // Every shard's dropout seed is drawn here, in ascending shard order,
      // from the trainer Rng — never from inside a worker — so the stream of
      // draws is the same for any thread count.
      shard_seeds.resize(num_shards);
      for (uint64_t& shard_seed : shard_seeds) {
        shard_seed = rng.NextUint64();
      }

      // Replicas re-read the parameters the last Step produced.
      for (std::vector<nn::Tensor>& params : replica_params) {
        for (size_t i = 0; i < main_params.size(); ++i) {
          params[i].mutable_data() = main_params[i].data();
        }
      }

      ParallelFor(shard_pool, 0, num_shards, /*grain=*/1,
                  [&](size_t chunk_begin, size_t chunk_end) {
                    ShardExecutor* e = acquire_executor();
                    for (size_t s = chunk_begin; s < chunk_end; ++s) {
                      obs::TimelineScope shard_scope("train.shard", "train");
                      shard_scope.AddArg("shard", static_cast<double>(s));
                      const size_t shard_begin = s * kShardRecords;
                      const size_t shard_end =
                          std::min(batch_size, shard_begin + kShardRecords);
                      RunShard(e, batch, shard_begin, shard_end, batch_size,
                               shard_seeds[s], &shard_results[s]);
                    }
                    release_executor(e);
                  });

      // Fixed-order reduction: shard partials land on the caller's model in
      // ascending shard order, making the batch gradient (and loss) exactly
      // reproducible for any thread count.
      optimizer.ZeroGrad();
      double batch_loss = 0.0;
      for (size_t s = 0; s < num_shards; ++s) {
        batch_loss += shard_results[s].loss;
        for (size_t i = 0; i < main_params.size(); ++i) {
          std::vector<float>& grad = main_params[i].mutable_grad();
          const std::vector<float>& partial = shard_results[s].grads[i];
          for (size_t j = 0; j < grad.size(); ++j) grad[j] += partial[j];
        }
      }
      ZDB_DCHECK_OK(nn::ValidateFiniteGradients(model->Parameters(),
                                                "trainer backward"));
      grad_norm_sum += optimizer.ClipGradNorm(options.grad_clip_norm);
      optimizer.Step();
      epoch_loss += batch_loss;
      ++batches;
    }
    result.final_train_loss =
        epoch_loss / static_cast<double>(std::max<size_t>(batches, 1));
    result.epochs_run = epoch + 1;
    epochs_counter->Add(1);
    batches_counter->Add(static_cast<int64_t>(batches));

    // Validation (falls back to train loss when no validation split). The
    // inference guard skips autodiff bookkeeping — the loss value is the
    // same arithmetic either way, and nothing calls Backward on it.
    double val_loss = result.final_train_loss;
    if (!validation.empty()) {
      nn::InferenceModeGuard inference;
      val_loss =
          model->LossOnBatch(validation, /*training=*/false, nullptr).item();
    }

    obs::EpochStat stat;
    stat.epoch = epoch + 1;
    stat.train_loss = result.final_train_loss;
    stat.val_loss = val_loss;
    stat.learning_rate = learning_rate;
    stat.grad_norm =
        grad_norm_sum / static_cast<double>(std::max<size_t>(batches, 1));
    result.history.push_back(stat);
    if (options.telemetry != nullptr) {
      // The sink controls its own logging (log_epochs).
      options.telemetry->RecordEpoch(stat);
    } else if (options.verbose) {
      obs::TrainTelemetry::LogEpoch(model->Name(), stat);
    }
    if (val_loss < best_val - 1e-6) {
      best_val = val_loss;
      best_weights = snapshot();
      epochs_since_best = 0;
    } else {
      ++epochs_since_best;
      if (epochs_since_best >= options.early_stop_patience) {
        result.early_stopped = true;
        break;
      }
    }
  }
  restore(best_weights);
  result.best_validation_loss = best_val;
  return result;
}

}  // namespace zerodb::train
