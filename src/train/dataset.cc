#include "train/dataset.h"

#include "common/logging.h"

namespace zerodb::train {

std::vector<QueryRecord> CollectRecords(
    const datagen::DatabaseEnv& env,
    const std::vector<plan::QuerySpec>& queries,
    const CollectOptions& options) {
  optimizer::Planner planner(env.db.get(), &env.stats, optimizer::CostParams(),
                             options.planner);
  exec::Executor executor(env.db.get(), options.executor);
  runtime::RuntimeSimulator simulator(options.machine);
  Rng noise_rng(options.noise_seed);

  std::vector<QueryRecord> records;
  records.reserve(queries.size());
  size_t rejected = 0;
  for (const plan::QuerySpec& query : queries) {
    auto plan = planner.Plan(query);
    if (!plan.ok()) {
      ++rejected;
      continue;
    }
    auto result = executor.Execute(&*plan);
    if (!result.ok()) {
      ++rejected;
      continue;
    }
    QueryRecord record;
    record.env = &env;
    record.db_name = env.db->name();
    record.query = query;
    record.runtime_ms = simulator.NoisyPlanMs(*plan, *result, &noise_rng);
    record.opt_cost = plan->root->est_cost;
    record.plan = std::move(*plan);
    records.push_back(std::move(record));
  }
  if (rejected > 0) {
    ZDB_LOG(Debug) << env.db->name() << ": " << rejected
                   << " queries rejected during collection";
  }
  return records;
}

std::vector<QueryRecord> CollectRandomWorkload(
    const datagen::DatabaseEnv& env, const workload::WorkloadConfig& config,
    size_t count, uint64_t seed, const CollectOptions& options) {
  workload::QueryGenerator generator(&env, config, seed);
  std::vector<QueryRecord> records;
  size_t attempts = 0;
  const size_t max_attempts = 3 * count + 16;
  while (records.size() < count && attempts < max_attempts) {
    size_t batch_size = count - records.size();
    std::vector<plan::QuerySpec> queries;
    queries.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) queries.push_back(generator.Next());
    attempts += batch_size;
    CollectOptions batch_options = options;
    batch_options.noise_seed = options.noise_seed + attempts;
    std::vector<QueryRecord> batch = CollectRecords(env, queries, batch_options);
    for (QueryRecord& record : batch) records.push_back(std::move(record));
  }
  return records;
}

std::vector<const QueryRecord*> MakeView(
    const std::vector<QueryRecord>& records) {
  std::vector<const QueryRecord*> view;
  view.reserve(records.size());
  for (const QueryRecord& record : records) view.push_back(&record);
  return view;
}

}  // namespace zerodb::train
