#include "train/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace zerodb::train {

std::string QErrorStats::ToString() const {
  return StrFormat("median=%.2f p95=%.2f max=%.2f (n=%zu)", median, p95, max,
                   count);
}

std::vector<double> QErrorsOf(const std::vector<double>& predicted,
                              const std::vector<double>& truth) {
  ZDB_CHECK_EQ(predicted.size(), truth.size());
  std::vector<double> q;
  q.reserve(predicted.size());
  for (size_t i = 0; i < predicted.size(); ++i) {
    q.push_back(QError(predicted[i], truth[i]));
  }
  return q;
}

QErrorStats ComputeQErrors(const std::vector<double>& predicted,
                           const std::vector<double>& truth) {
  QErrorStats stats;
  std::vector<double> q = QErrorsOf(predicted, truth);
  if (q.empty()) return stats;
  std::sort(q.begin(), q.end());
  stats.count = q.size();
  stats.median = QuantileSorted(q, 0.5);
  stats.p95 = QuantileSorted(q, 0.95);
  stats.max = q.back();
  stats.mean = Mean(q);
  return stats;
}

std::vector<double> QErrorsOf(const std::vector<Millis>& predicted,
                              const std::vector<double>& truth) {
  std::vector<double> raw;
  raw.reserve(predicted.size());
  for (Millis value : predicted) raw.push_back(value.value());
  return QErrorsOf(raw, truth);
}

QErrorStats ComputeQErrors(const std::vector<Millis>& predicted,
                           const std::vector<double>& truth) {
  std::vector<double> raw;
  raw.reserve(predicted.size());
  for (Millis value : predicted) raw.push_back(value.value());
  return ComputeQErrors(raw, truth);
}

}  // namespace zerodb::train
