#ifndef ZERODB_TRAIN_TRAINER_H_
#define ZERODB_TRAIN_TRAINER_H_

#include <cstdint>
#include <vector>

#include "models/cost_predictor.h"
#include "obs/telemetry.h"
#include "train/dataset.h"

namespace zerodb::train {

enum class LrScheduleKind { kConstant, kStepDecay, kCosine };

struct TrainerOptions {
  size_t max_epochs = 60;
  size_t batch_size = 32;
  float learning_rate = 1e-3f;
  LrScheduleKind lr_schedule = LrScheduleKind::kConstant;
  float lr_decay_factor = 0.5f;   ///< step decay only
  size_t lr_decay_epochs = 15;    ///< step decay only
  float lr_floor = 1e-4f;         ///< cosine only
  float weight_decay = 1e-5f;
  double grad_clip_norm = 10.0;
  double validation_fraction = 0.1;
  size_t early_stop_patience = 10;  ///< epochs without val improvement
  uint64_t seed = 99;
  /// Worker threads for the intra-epoch gradient computation. 0 = size of
  /// the global ThreadPool (hardware_concurrency unless overridden via
  /// ZERODB_THREADS / --threads); 1 = serial. Any value yields bit-identical
  /// loss histories: every mini-batch is split into fixed 8-record shards
  /// whose partial gradients are reduced in ascending shard order, and each
  /// shard draws its dropout Rng from a seed pre-drawn in shard order — the
  /// arithmetic never depends on which thread ran which shard. Parallel
  /// execution needs models::NeuralCostModel::CloneReplica; models without
  /// it train serially (still sharded, still identical).
  size_t num_threads = 0;
  /// Pooled autodiff memory: each shard executor owns a nn::GraphArena that
  /// serves every graph node and buffer of its shards and is reset once the
  /// shard's gradients are harvested — at steady state a training batch
  /// allocates nothing in the nn layer. Arithmetic is unchanged (same ops,
  /// same buffers zeroed the same way), so loss histories are bit-identical
  /// to the fresh-allocation path (pinned by
  /// TrainTest.PooledMemoryDoesNotChangeLossHistory). Gated globally by
  /// ZERODB_ARENA=off (nn::ArenaEnabled), which CI uses to keep the
  /// fallback path exercised.
  bool pooled_memory = true;
  /// Logs one line per epoch (via the telemetry sink when one is attached,
  /// else through obs::TrainTelemetry::LogEpoch → ZDB_LOG).
  bool verbose = false;
  /// Optional external sink receiving every epoch's EpochStat as it is
  /// produced (the per-epoch history also always lands in
  /// TrainResult::history).
  obs::TrainTelemetry* telemetry = nullptr;
};

struct TrainResult {
  size_t epochs_run = 0;
  double final_train_loss = 0.0;
  double best_validation_loss = 0.0;
  bool early_stopped = false;
  /// One entry per epoch run: train/val loss, learning rate, gradient norm.
  std::vector<obs::EpochStat> history;
};

/// Mini-batch Adam training with validation-based early stopping and
/// best-weights restoration — the standard recipe the paper's models use.
///
/// Thread-compatible, not thread-safe (DESIGN.md "Concurrency discipline"):
/// the model, the records and the telemetry sink must not be touched by
/// other threads for the duration of the call. Training runs over disjoint
/// models are safe concurrently (logging and the global metrics registry,
/// the only shared state reached from here, are thread-safe).
///
/// Internally the gradient computation fans minibatch shards out over the
/// global ThreadPool (see TrainerOptions::num_threads); worker threads only
/// ever touch model replicas, never the caller's model.
TrainResult TrainModel(models::NeuralCostModel* model,
                       const std::vector<const QueryRecord*>& records,
                       const TrainerOptions& options = TrainerOptions());

}  // namespace zerodb::train

#endif  // ZERODB_TRAIN_TRAINER_H_
