#ifndef ZERODB_TRAIN_METRICS_H_
#define ZERODB_TRAIN_METRICS_H_

#include <string>
#include <vector>

#include "common/units.h"

namespace zerodb::train {

/// Q-error summary statistics — the metric of the paper's Figure 4 and
/// Table 1 (median / 95th / max).
struct QErrorStats {
  double median = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  size_t count = 0;

  std::string ToString() const;
};

/// Computes Q-errors between predictions and true values (element-wise).
QErrorStats ComputeQErrors(const std::vector<double>& predicted,
                           const std::vector<double>& truth);

/// Strongly typed form for model readouts: PredictMs returns Millis, the
/// ground truth stays the records' raw runtime_ms doubles. Q-errors
/// themselves are dimensionless ratios.
QErrorStats ComputeQErrors(const std::vector<Millis>& predicted,
                           const std::vector<double>& truth);

/// Raw per-query Q-errors, for custom quantiles.
std::vector<double> QErrorsOf(const std::vector<double>& predicted,
                              const std::vector<double>& truth);

/// Millis overload, mirroring ComputeQErrors.
std::vector<double> QErrorsOf(const std::vector<Millis>& predicted,
                              const std::vector<double>& truth);

}  // namespace zerodb::train

#endif  // ZERODB_TRAIN_METRICS_H_
