#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/pool_hooks.h"
#include "common/sync.h"

namespace zerodb {

namespace {

std::atomic<size_t> g_global_threads_override{0};
std::atomic<size_t> g_global_pool_threads{0};

/// Global-pool size: SetGlobalThreads override > ZERODB_THREADS env >
/// hardware_concurrency.
size_t GlobalPoolSize() {
  size_t override_threads =
      g_global_threads_override.load(std::memory_order_relaxed);
  if (override_threads > 0) return override_threads;
  // Configuration-only env read: it changes how many workers exist, never
  // what they compute — results stay bit-identical at any thread count
  // (tests ParallelTrainingDeterminism / ParallelCorpusDeterminism).
  const char* env = std::getenv("ZERODB_THREADS");  // zerodb-lint: allow(nondet-call)
  if (env != nullptr) {
    char* end = nullptr;
    unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  return 0;  // ThreadPool(0) → hardware_concurrency
}

}  // namespace

void WaitGroup::Add(size_t n) {
  MutexLock lock(&mu_);
  count_ += n;
}

void WaitGroup::Done() {
  MutexLock lock(&mu_);
  ZDB_CHECK_GT(count_, 0u) << "WaitGroup::Done without matching Add";
  if (--count_ == 0) cv_.NotifyAll();
}

void WaitGroup::Wait() {
  MutexLock lock(&mu_);
  while (count_ > 0) cv_.Wait(&mu_);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  ZDB_CHECK(fn != nullptr);
  PoolHooks* hooks = GetPoolHooks();
  Task task;
  task.fn = std::move(fn);
  if (hooks != nullptr) task.enqueue_us = hooks->EnqueueTimestampUs();
  {
    MutexLock lock(&mu_);
    ZDB_CHECK(!shutdown_) << "Schedule on a shut-down ThreadPool";
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
  if (hooks != nullptr) hooks->OnScheduled();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    Task task;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !shutdown_) work_cv_.Wait(&mu_);
      // Drain before exiting so scheduled work is never dropped.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Re-read per task: hooks installed after the pool started (the usual
    // order — the global pool tends to exist before any bench enables
    // observability) still see every subsequent task.
    PoolHooks* hooks = GetPoolHooks();
    if (hooks != nullptr) {
      hooks->RunTask(worker_index, task.enqueue_us, task.fn);
    } else {
      task.fn();
    }
  }
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(GlobalPoolSize());
  // One-time announcement: expose the size (GlobalCreatedThreads) and tell
  // already-installed hooks; hooks installed later read the size instead.
  static bool reported = [] {
    g_global_pool_threads.store(pool->num_threads(),
                                std::memory_order_release);
    PoolHooks* hooks = GetPoolHooks();
    if (hooks != nullptr) hooks->OnGlobalPoolCreated(pool->num_threads());
    return true;
  }();
  (void)reported;
  return pool;
}

size_t ThreadPool::GlobalCreatedThreads() {
  return g_global_pool_threads.load(std::memory_order_acquire);
}

void ThreadPool::SetGlobalThreads(size_t num_threads) {
  ZDB_CHECK(g_global_pool_threads.load(std::memory_order_relaxed) == 0)
      << "SetGlobalThreads after the global pool was created";
  g_global_threads_override.store(num_threads, std::memory_order_relaxed);
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t range = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || range <= grain) {
    fn(begin, end);
    return;
  }
  const size_t num_chunks = (range + grain - 1) / grain;
  PoolHooks* hooks = GetPoolHooks();
  if (hooks != nullptr) hooks->OnParallelFor(num_chunks);

  struct State {
    std::atomic<size_t> next_chunk{0};
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 0;
    size_t num_chunks = 0;
    const std::function<void(size_t, size_t)>* fn = nullptr;
    WaitGroup done;
  };
  auto state = std::make_shared<State>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->fn = &fn;
  state->done.Add(num_chunks);

  // Claim-next-chunk loop shared by workers and the caller. `fn` (borrowed
  // from the caller's frame) is only invoked for a claimed chunk, and the
  // caller blocks until every chunk's Done — so the pointer never dangles.
  auto run_chunks = [](State* s) {
    for (;;) {
      size_t chunk = s->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= s->num_chunks) return;
      size_t chunk_begin = s->begin + chunk * s->grain;
      size_t chunk_end = std::min(s->end, chunk_begin + s->grain);
      (*s->fn)(chunk_begin, chunk_end);
      s->done.Done();
    }
  };

  // The caller is one executor; helpers cover the rest of the chunks.
  const size_t helpers = std::min(pool->num_threads(), num_chunks - 1);
  for (size_t h = 0; h < helpers; ++h) {
    pool->Schedule([state, run_chunks] { run_chunks(state.get()); });
  }
  run_chunks(state.get());
  state->done.Wait();
}

}  // namespace zerodb
