#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/sync.h"
#include "obs/metrics.h"
#include "obs/trace_event.h"

namespace zerodb {

namespace {

// Pool telemetry (wired into every bench's --metrics_out artifact).
// Function-local statics keep the registry name lookups off the hot path.
struct PoolMetrics {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* tasks_scheduled = registry.GetCounter("pool.tasks_scheduled");
  obs::Counter* tasks_run = registry.GetCounter("pool.tasks_run");
  obs::Counter* parallel_for_calls =
      registry.GetCounter("pool.parallel_for_calls");
  obs::Counter* parallel_for_chunks =
      registry.GetCounter("pool.parallel_for_chunks");
  obs::Gauge* global_threads = registry.GetGauge("pool.global_threads");
  /// Time a task sat in the shared queue before a worker picked ("stole")
  /// it — the contention signal of the single-queue design.
  obs::Histogram* steal_latency_us =
      registry.GetHistogram("pool.steal_latency_us");

  static PoolMetrics& Get() {
    static PoolMetrics* metrics = new PoolMetrics();
    return *metrics;
  }
};

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<size_t> g_global_threads_override{0};
std::atomic<bool> g_global_pool_created{false};

/// Global-pool size: SetGlobalThreads override > ZERODB_THREADS env >
/// hardware_concurrency.
size_t GlobalPoolSize() {
  size_t override_threads =
      g_global_threads_override.load(std::memory_order_relaxed);
  if (override_threads > 0) return override_threads;
  const char* env = std::getenv("ZERODB_THREADS");
  if (env != nullptr) {
    char* end = nullptr;
    unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  return 0;  // ThreadPool(0) → hardware_concurrency
}

}  // namespace

void WaitGroup::Add(size_t n) {
  MutexLock lock(&mu_);
  count_ += n;
}

void WaitGroup::Done() {
  MutexLock lock(&mu_);
  ZDB_CHECK_GT(count_, 0u) << "WaitGroup::Done without matching Add";
  if (--count_ == 0) cv_.NotifyAll();
}

void WaitGroup::Wait() {
  MutexLock lock(&mu_);
  while (count_ > 0) cv_.Wait(&mu_);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  ZDB_CHECK(fn != nullptr);
  PoolMetrics& metrics = PoolMetrics::Get();
  Task task;
  task.fn = std::move(fn);
  if (metrics.registry.enabled()) task.enqueue_us = NowUs();
  {
    MutexLock lock(&mu_);
    ZDB_CHECK(!shutdown_) << "Schedule on a shut-down ThreadPool";
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
  metrics.tasks_scheduled->Add(1);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  // Names the worker's timeline track ("pool-worker-3") whether the trace
  // recorder already exists or gets installed later — the name is stored
  // thread-locally and read on first event.
  obs::SetCurrentThreadTraceName("pool-worker-" +
                                 std::to_string(worker_index));
  PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    Task task;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !shutdown_) work_cv_.Wait(&mu_);
      // Drain before exiting so scheduled work is never dropped.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (task.enqueue_us > 0.0) {
      metrics.steal_latency_us->Observe(NowUs() - task.enqueue_us);
    }
    {
      obs::TimelineScope scope("pool.task", "pool");
      task.fn();
    }
    metrics.tasks_run->Add(1);
  }
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(GlobalPoolSize());
  if (!g_global_pool_created.exchange(true, std::memory_order_relaxed)) {
    PoolMetrics::Get().global_threads->Set(
        static_cast<double>(pool->num_threads()));
  }
  return pool;
}

void ThreadPool::SetGlobalThreads(size_t num_threads) {
  ZDB_CHECK(!g_global_pool_created.load(std::memory_order_relaxed))
      << "SetGlobalThreads after the global pool was created";
  g_global_threads_override.store(num_threads, std::memory_order_relaxed);
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t range = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || range <= grain) {
    fn(begin, end);
    return;
  }
  const size_t num_chunks = (range + grain - 1) / grain;
  PoolMetrics& metrics = PoolMetrics::Get();
  metrics.parallel_for_calls->Add(1);
  metrics.parallel_for_chunks->Add(static_cast<int64_t>(num_chunks));

  struct State {
    std::atomic<size_t> next_chunk{0};
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 0;
    size_t num_chunks = 0;
    const std::function<void(size_t, size_t)>* fn = nullptr;
    WaitGroup done;
  };
  auto state = std::make_shared<State>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->fn = &fn;
  state->done.Add(num_chunks);

  // Claim-next-chunk loop shared by workers and the caller. `fn` (borrowed
  // from the caller's frame) is only invoked for a claimed chunk, and the
  // caller blocks until every chunk's Done — so the pointer never dangles.
  auto run_chunks = [](State* s) {
    for (;;) {
      size_t chunk = s->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= s->num_chunks) return;
      size_t chunk_begin = s->begin + chunk * s->grain;
      size_t chunk_end = std::min(s->end, chunk_begin + s->grain);
      (*s->fn)(chunk_begin, chunk_end);
      s->done.Done();
    }
  };

  // The caller is one executor; helpers cover the rest of the chunks.
  const size_t helpers = std::min(pool->num_threads(), num_chunks - 1);
  for (size_t h = 0; h < helpers; ++h) {
    pool->Schedule([state, run_chunks] { run_chunks(state.get()); });
  }
  run_chunks(state.get());
  state->done.Wait();
}

}  // namespace zerodb
