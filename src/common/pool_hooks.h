#ifndef ZERODB_COMMON_POOL_HOOKS_H_
#define ZERODB_COMMON_POOL_HOOKS_H_

#include <cstddef>
#include <functional>

namespace zerodb {

/// Telemetry callout interface for ThreadPool / ParallelFor.
///
/// common/ sits at the bottom of the module DAG (zerodb-analyzer rule
/// `layering`) and therefore must not include obs/. Instead the pool calls
/// out through this interface; obs/pool_telemetry.{h,cc} implements it
/// (pool.* metrics, timeline tracks, queue-wait histogram) and installs the
/// implementation the moment observability is first touched
/// (MetricsRegistry::Global / TraceEventRecorder::InstallGlobal).
///
/// With no hooks installed the pool reads no clocks and touches no
/// registries — scheduling is zero-overhead and bit-deterministic, which is
/// also why this file needs no nondet-call allowances.
class PoolHooks {
 public:
  virtual ~PoolHooks() = default;

  /// Timestamp (steady-clock microseconds) stamped on a task at enqueue so
  /// queue-wait can be measured at dequeue. Return 0 to skip measurement
  /// (e.g. metrics disabled); the clock read lives in the implementation.
  virtual double EnqueueTimestampUs() = 0;

  /// One task was pushed onto a pool queue.
  virtual void OnScheduled() = 0;

  /// Runs `task` on worker `worker_index`. Implementations wrap the call
  /// with tracing/accounting (timeline scope, tasks_run, queue-wait
  /// observation from `enqueue_us` when > 0) and MUST invoke `task` exactly
  /// once.
  virtual void RunTask(size_t worker_index, double enqueue_us,
                       const std::function<void()>& task) = 0;

  /// The process-wide pool was just created with `num_threads` workers.
  virtual void OnGlobalPoolCreated(size_t num_threads) = 0;

  /// One ParallelFor call fanned out into `num_chunks` chunks.
  virtual void OnParallelFor(size_t num_chunks) = 0;
};

/// Installs the process-wide hooks. `hooks` must outlive every pool (the
/// obs implementation is a leak-singleton). Replacing a previous
/// installation is allowed; passing nullptr uninstalls.
void SetPoolHooks(PoolHooks* hooks);

/// Currently installed hooks, or nullptr. Lock-free (relaxed atomic load):
/// callers on the schedule/run hot path pay one load + branch when no
/// hooks are installed.
PoolHooks* GetPoolHooks();

}  // namespace zerodb

#endif  // ZERODB_COMMON_POOL_HOOKS_H_
