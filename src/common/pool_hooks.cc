#include "common/pool_hooks.h"

#include <atomic>

namespace zerodb {

namespace {
std::atomic<PoolHooks*> g_pool_hooks{nullptr};
}  // namespace

void SetPoolHooks(PoolHooks* hooks) {
  g_pool_hooks.store(hooks, std::memory_order_release);
}

PoolHooks* GetPoolHooks() {
  return g_pool_hooks.load(std::memory_order_acquire);
}

}  // namespace zerodb
