#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace zerodb {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed expansion via SplitMix64 per the xoshiro authors' recommendation.
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  ZDB_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  ZDB_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextUint64(range));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; cache the second variate.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  ZDB_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    ZDB_CHECK_GE(w, 0.0);
    total += w;
  }
  ZDB_CHECK_GT(total, 0.0) << "Categorical requires a positive weight";
  double draw = UniformDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (draw < cumulative) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  ZDB_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector; O(n) memory is fine at the
  // scales used here (columns, tables, query slots).
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + NextUint64(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace zerodb
