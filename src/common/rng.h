#ifndef ZERODB_COMMON_RNG_H_
#define ZERODB_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace zerodb {

/// Deterministic pseudo-random number generator (xoshiro256**). Every
/// stochastic component in the library (data generation, workload generation,
/// model initialization, noise injection) draws from an explicitly seeded Rng
/// so experiments are reproducible end to end.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Lognormal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Index drawn from the (unnormalized, non-negative) weights.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles the vector in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = NextUint64(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; useful to give each database /
  /// workload / model its own deterministic stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace zerodb

#endif  // ZERODB_COMMON_RNG_H_
