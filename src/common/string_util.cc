#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace zerodb {

std::string Join(const std::vector<std::string>& pieces,
                 const std::string& separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result += separator;
    result += pieces[i];
  }
  return result;
}

std::vector<std::string> Split(const std::string& text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string::npos) {
      pieces.push_back(text.substr(start));
      break;
    }
    pieces.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    // Return value already known: the sizing pass above measured it.
    (void)std::vsnprintf(result.data(), result.size() + 1, format,
                         args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string PadLeft(const std::string& text, size_t width) {
  if (text.size() >= width) return text;
  return std::string(width - text.size(), ' ') + text;
}

std::string PadRight(const std::string& text, size_t width) {
  if (text.size() >= width) return text;
  return text + std::string(width - text.size(), ' ');
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

}  // namespace zerodb
