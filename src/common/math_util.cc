#include "common/math_util.h"

#include "common/check.h"

namespace zerodb {

double QError(double predicted, double truth, double epsilon) {
  double p = std::max(predicted, epsilon);
  double t = std::max(truth, epsilon);
  return std::max(p / t, t / p);
}

double Quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, q);
}

double QuantileSorted(const std::vector<double>& sorted, double q) {
  ZDB_CHECK(!sorted.empty());
  ZDB_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  double position = q * static_cast<double>(sorted.size() - 1);
  size_t lower = static_cast<size_t>(position);
  size_t upper = std::min(lower + 1, sorted.size() - 1);
  double fraction = position - static_cast<double>(lower);
  return sorted[lower] * (1.0 - fraction) + sorted[upper] * fraction;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sum_squares = 0.0;
  for (double v : values) sum_squares += (v - mean) * (v - mean);
  return std::sqrt(sum_squares / static_cast<double>(values.size()));
}

LinearFit FitLeastSquares(const std::vector<double>& x,
                          const std::vector<double>& y) {
  ZDB_CHECK_EQ(x.size(), y.size());
  LinearFit fit;
  if (x.size() < 2) {
    fit.intercept = y.empty() ? 0.0 : Mean(y);
    return fit;
  }
  double mean_x = Mean(x);
  double mean_y = Mean(y);
  double covariance = 0.0;
  double variance_x = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    covariance += (x[i] - mean_x) * (y[i] - mean_y);
    variance_x += (x[i] - mean_x) * (x[i] - mean_x);
  }
  if (variance_x <= 1e-12) {
    fit.intercept = mean_y;
    return fit;
  }
  fit.slope = covariance / variance_x;
  fit.intercept = mean_y - fit.slope * mean_x;
  return fit;
}

}  // namespace zerodb
