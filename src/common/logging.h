#ifndef ZERODB_COMMON_LOGGING_H_
#define ZERODB_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace zerodb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns / sets the global minimum level that is actually emitted.
/// Benches raise this to kWarning to keep their table output clean.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Receives one fully formatted log line (no trailing newline). Sinks are
/// invoked under the logging mutex, one whole line per call — never
/// interleaved fragments. Pass nullptr to restore the default stderr sink.
/// Used by tests to capture output and by embedders to redirect it.
using LogSink = std::function<void(const std::string& line)>;
void SetLogSink(LogSink sink);

namespace internal_logging {

/// Buffers one log line and emits it atomically on destruction with a
/// `[<level> <ISO-8601 UTC time> t<thread> <file>:<line>]` prefix. Safe to
/// use concurrently from many threads: each line reaches the sink (default
/// stderr) as a single write.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define ZDB_LOG(level)                                         \
  ::zerodb::internal_logging::LogMessage(                      \
      ::zerodb::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace zerodb

#endif  // ZERODB_COMMON_LOGGING_H_
