#ifndef ZERODB_COMMON_MATH_UTIL_H_
#define ZERODB_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace zerodb {

/// log(1 + x) feature transform used throughout featurization; clamps
/// negative inputs (which only arise from numerical noise) to zero.
inline double Log1pSafe(double x) { return std::log1p(std::max(0.0, x)); }

/// Q-error between a prediction and a true value: max(p/t, t/p), the standard
/// multiplicative error metric for cost/cardinality estimation. Both inputs
/// are floored at `epsilon` to stay finite.
double QError(double predicted, double truth, double epsilon = 1e-9);

/// Empirical quantile (linear interpolation, q in [0,1]) of the values.
/// Sorts a copy; callers with sorted data should use QuantileSorted.
double Quantile(std::vector<double> values, double q);

/// Quantile over already-sorted ascending values.
double QuantileSorted(const std::vector<double>& sorted, double q);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Population standard deviation; 0 for fewer than 2 values.
double StdDev(const std::vector<double>& values);

/// Ordinary least squares fit y ~= slope * x + intercept.
/// Degenerate inputs (constant x, < 2 points) yield slope 0.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
};
LinearFit FitLeastSquares(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Integer ceil division for positive operands.
inline int64_t CeilDiv(int64_t numerator, int64_t denominator) {
  return (numerator + denominator - 1) / denominator;
}

}  // namespace zerodb

#endif  // ZERODB_COMMON_MATH_UTIL_H_
