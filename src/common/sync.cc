#include "common/sync.h"

#include <chrono>

namespace zerodb {

// The adopt/release dance hands the already-held std::mutex to a
// std::unique_lock for the duration of the wait (std::condition_variable's
// required lock form) without a second acquisition, then detaches so the
// caller's MutexLock remains the owner.

void CondVar::Wait(Mutex* mu) {
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

bool CondVar::WaitFor(Mutex* mu, double timeout_ms) {
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  const std::cv_status status =
      cv_.wait_for(lock, std::chrono::duration<double, std::milli>(timeout_ms));
  lock.release();
  return status == std::cv_status::no_timeout;
}

void CondVar::NotifyOne() { cv_.notify_one(); }

void CondVar::NotifyAll() { cv_.notify_all(); }

}  // namespace zerodb
