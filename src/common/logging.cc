#include "common/logging.h"

#include <atomic>

namespace zerodb {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    const char* basename = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') basename = p + 1;
    }
    stream_ << "[" << LevelTag(level) << " " << basename << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

}  // namespace internal_logging

}  // namespace zerodb
