#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "common/sync.h"

namespace zerodb {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Guards sink emission AND sink replacement, so a line in flight can never
// race with SetLogSink or interleave with another thread's line.
// Constexpr-constructed, so it is usable from static initializers of other
// translation units.
Mutex g_sink_mutex;

// The installed sink. Lazily heap-allocated and intentionally never freed
// so threads logging during static destruction cannot touch a destroyed
// std::function.
LogSink* g_sink ZDB_GUARDED_BY(g_sink_mutex)
    ZDB_PT_GUARDED_BY(g_sink_mutex) = nullptr;

LogSink& SinkSlot() ZDB_REQUIRES(g_sink_mutex) {
  if (g_sink == nullptr) {
    // zerodb-lint: allow(naked-new) — intentional leak, see comment above.
    g_sink = new LogSink();
  }
  return *g_sink;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Small dense per-thread ids (t1, t2, ...) beat the unreadable 15-digit
// native handles in log prefixes.
int ThreadId() {
  static std::atomic<int> next_id{0};
  thread_local int id = ++next_id;
  return id;
}

// ISO-8601 UTC with millisecond precision: 2026-08-06T12:34:56.789Z
void FormatTimestamp(char* buf, size_t size) {
  // Wall clock feeds human-readable diagnostic prefixes only; log text is
  // never parsed back into model or query state.
  const auto now = std::chrono::system_clock::now();  // zerodb-lint: allow(nondet-call)
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  // The modulo bounds let the compiler prove the fixed field widths, so the
  // formatted length is provably < 32 bytes (-Wformat-truncation under
  // -Werror needs the proof; the values never actually wrap).
  (void)std::snprintf(buf, size, "%04u-%02u-%02uT%02u:%02u:%02u.%03uZ",
                      static_cast<unsigned>(utc.tm_year + 1900) % 10000u,
                      static_cast<unsigned>(utc.tm_mon + 1) % 100u,
                      static_cast<unsigned>(utc.tm_mday) % 100u,
                      static_cast<unsigned>(utc.tm_hour) % 100u,
                      static_cast<unsigned>(utc.tm_min) % 100u,
                      static_cast<unsigned>(utc.tm_sec) % 100u,
                      static_cast<unsigned>(millis) % 1000u);
}

void Emit(const std::string& line) {
  MutexLock lock(&g_sink_mutex);
  LogSink& sink = SinkSlot();
  if (sink) {
    sink(line);
    return;
  }
  std::string with_newline = line;
  with_newline.push_back('\n');
  // Best-effort: a full stderr pipe must not take the process down
  // with it, and there is nowhere left to report a write failure to.
  (void)std::fwrite(with_newline.data(), 1, with_newline.size(), stderr);
  (void)std::fflush(stderr);
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

void SetLogSink(LogSink sink) {
  MutexLock lock(&g_sink_mutex);
  SinkSlot() = std::move(sink);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    const char* basename = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') basename = p + 1;
    }
    char timestamp[32];
    FormatTimestamp(timestamp, sizeof(timestamp));
    stream_ << "[" << LevelTag(level) << " " << timestamp << " t"
            << ThreadId() << " " << basename << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) Emit(stream_.str());
}

}  // namespace internal_logging

}  // namespace zerodb
