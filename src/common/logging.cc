#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace zerodb {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Guards sink emission AND sink replacement, so a line in flight can never
// race with SetLogSink or interleave with another thread's line.
std::mutex& SinkMutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

LogSink& SinkSlot() {
  static LogSink* sink = new LogSink();
  return *sink;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Small dense per-thread ids (t1, t2, ...) beat the unreadable 15-digit
// native handles in log prefixes.
int ThreadId() {
  static std::atomic<int> next_id{0};
  thread_local int id = ++next_id;
  return id;
}

// ISO-8601 UTC with millisecond precision: 2026-08-06T12:34:56.789Z
void FormatTimestamp(char* buf, size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  // The modulo bounds let the compiler prove the fixed field widths, so the
  // formatted length is provably < 32 bytes (-Wformat-truncation under
  // -Werror needs the proof; the values never actually wrap).
  std::snprintf(buf, size, "%04u-%02u-%02uT%02u:%02u:%02u.%03uZ",
                static_cast<unsigned>(utc.tm_year + 1900) % 10000u,
                static_cast<unsigned>(utc.tm_mon + 1) % 100u,
                static_cast<unsigned>(utc.tm_mday) % 100u,
                static_cast<unsigned>(utc.tm_hour) % 100u,
                static_cast<unsigned>(utc.tm_min) % 100u,
                static_cast<unsigned>(utc.tm_sec) % 100u,
                static_cast<unsigned>(millis) % 1000u);
}

void Emit(const std::string& line) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink& sink = SinkSlot();
  if (sink) {
    sink(line);
    return;
  }
  std::string with_newline = line;
  with_newline.push_back('\n');
  std::fwrite(with_newline.data(), 1, with_newline.size(), stderr);
  std::fflush(stderr);
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    const char* basename = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') basename = p + 1;
    }
    char timestamp[32];
    FormatTimestamp(timestamp, sizeof(timestamp));
    stream_ << "[" << LevelTag(level) << " " << timestamp << " t"
            << ThreadId() << " " << basename << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) Emit(stream_.str());
}

}  // namespace internal_logging

}  // namespace zerodb
