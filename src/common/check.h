#ifndef ZERODB_COMMON_CHECK_H_
#define ZERODB_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace zerodb {
namespace internal_check {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used by the ZDB_CHECK* macros for unrecoverable invariant violations;
/// recoverable conditions should use Status instead.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    // The process is aborting: write straight to stderr, bypassing the log
    // sink (whose machinery may be the broken invariant).
    // zerodb-lint: allow(stdout-io)
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace zerodb

/// Aborts with a message if `condition` is false. Always on (also in release
/// builds): in a database engine, continuing past a broken invariant corrupts
/// results silently. Supports streaming details: ZDB_CHECK(x) << "context".
/// The for-loop expansion ensures the streamed message is only evaluated on
/// failure (the CheckFailureStream destructor aborts, so the loop body runs
/// at most once).
#define ZDB_CHECK(condition)                                              \
  for (bool zdb_check_ok = static_cast<bool>(condition); !zdb_check_ok;  \
       zdb_check_ok = true)                                               \
  ::zerodb::internal_check::CheckFailureStream(#condition, __FILE__, __LINE__)

#define ZDB_CHECK_EQ(a, b) ZDB_CHECK((a) == (b))
#define ZDB_CHECK_NE(a, b) ZDB_CHECK((a) != (b))
#define ZDB_CHECK_LT(a, b) ZDB_CHECK((a) < (b))
#define ZDB_CHECK_LE(a, b) ZDB_CHECK((a) <= (b))
#define ZDB_CHECK_GT(a, b) ZDB_CHECK((a) > (b))
#define ZDB_CHECK_GE(a, b) ZDB_CHECK((a) >= (b))

/// Debug-only checks; compiled out in NDEBUG builds for hot paths.
///
/// The NDEBUG stub must keep its operands *unevaluated* (no runtime cost)
/// yet *referenced*: `while (false && cond)` short-circuits away the
/// evaluation and the optimizer deletes the dead loop, but the operands are
/// still odr-used, so variables only consumed by DCHECKs don't trip
/// -Wunused-variable under -Werror, and the expression keeps type-checking
/// in release builds. Streamed context compiles (and is discarded) the same
/// way: the loop body never runs.
#ifdef NDEBUG
#define ZDB_DCHECK(condition)                          \
  while (false && static_cast<bool>(condition))        \
  ::zerodb::internal_check::CheckFailureStream(#condition, __FILE__, __LINE__)
#else
#define ZDB_DCHECK(condition) ZDB_CHECK(condition)
#endif

#define ZDB_DCHECK_EQ(a, b) ZDB_DCHECK((a) == (b))
#define ZDB_DCHECK_NE(a, b) ZDB_DCHECK((a) != (b))
#define ZDB_DCHECK_LT(a, b) ZDB_DCHECK((a) < (b))
#define ZDB_DCHECK_LE(a, b) ZDB_DCHECK((a) <= (b))
#define ZDB_DCHECK_GT(a, b) ZDB_DCHECK((a) > (b))
#define ZDB_DCHECK_GE(a, b) ZDB_DCHECK((a) >= (b))

#endif  // ZERODB_COMMON_CHECK_H_
