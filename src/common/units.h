#ifndef ZERODB_COMMON_UNITS_H_
#define ZERODB_COMMON_UNITS_H_

#include <algorithm>
#include <cmath>

namespace zerodb {

/// Strong value classes for the quantities the cost pipeline juggles.
/// Everything the zero-shot model touches — runtimes, log-runtimes,
/// cardinalities, widths, selectivities — is a `double` at the ABI level,
/// and a single unit mix-up (log-space into linear-space, ms into a rows
/// slot) silently corrupts training and every downstream prediction. These
/// wrappers make the unit part of the signature.
///
/// Conventions (see DESIGN.md "Interprocedural dataflow"):
///  - construction from a raw double is `explicit`; `.value()` is the only
///    exit back to raw doubles. zerodb-analyzer's `unit-mix` pass seeds its
///    tag lattice from these types, so a `.value()` double keeps its tag
///    until it passes through a *named* conversion.
///  - same-unit addition/subtraction/comparison is defined; cross-unit
///    arithmetic is a compile error on typed paths and an analyzer finding
///    on the raw-double paths the type system cannot see.
///  - Millis <-> LogMillis is never a bare std::log/std::exp at call sites:
///    `Millis::ToLog()` applies the models' historical clamp
///    (log(max(ms, 1e-6))) and `Millis::FromLog()` inverts it, so every
///    model readout stays bit-identical to the pre-units code.
///  - Selectivity is produced from two Rows via `Selectivity::FromRows`
///    (out/in clamped to [0, 10], expanding operators allowed), never by
///    hand-dividing doubles.

class LogMillis;

/// A runtime (or runtime prediction) in wall-clock milliseconds.
class Millis {
 public:
  constexpr Millis() = default;
  explicit constexpr Millis(double ms) : ms_(ms) {}

  constexpr double value() const { return ms_; }

  /// Named conversion into log space with the clamp every model readout
  /// has always used: log(max(ms, 1e-6)).
  LogMillis ToLog() const;

  /// Inverse of ToLog(): exp(log_ms).
  static Millis FromLog(LogMillis log_ms);

  Millis& operator+=(Millis other) {
    ms_ += other.ms_;
    return *this;
  }
  friend constexpr Millis operator+(Millis a, Millis b) {
    return Millis(a.ms_ + b.ms_);
  }
  friend constexpr Millis operator-(Millis a, Millis b) {
    return Millis(a.ms_ - b.ms_);
  }
  /// Scaling by a dimensionless factor (uncertainty spreads, thresholds).
  friend constexpr Millis operator*(Millis a, double factor) {
    return Millis(a.ms_ * factor);
  }
  friend constexpr Millis operator*(double factor, Millis a) {
    return Millis(factor * a.ms_);
  }
  friend constexpr Millis operator/(Millis a, double divisor) {
    return Millis(a.ms_ / divisor);
  }
  /// ms / ms is a dimensionless ratio (q-errors, improvement factors).
  friend constexpr double operator/(Millis a, Millis b) {
    return a.ms_ / b.ms_;
  }
  friend constexpr bool operator==(Millis a, Millis b) {
    return a.ms_ == b.ms_;
  }
  friend constexpr bool operator!=(Millis a, Millis b) {
    return a.ms_ != b.ms_;
  }
  friend constexpr bool operator<(Millis a, Millis b) { return a.ms_ < b.ms_; }
  friend constexpr bool operator>(Millis a, Millis b) { return a.ms_ > b.ms_; }
  friend constexpr bool operator<=(Millis a, Millis b) {
    return a.ms_ <= b.ms_;
  }
  friend constexpr bool operator>=(Millis a, Millis b) {
    return a.ms_ >= b.ms_;
  }

 private:
  double ms_ = 0.0;
};

/// A log-transformed runtime: the regression target the neural models
/// train on (runtimes span orders of magnitude). Only Millis::ToLog()
/// produces one; only Millis::FromLog() turns it back.
class LogMillis {
 public:
  constexpr LogMillis() = default;
  explicit constexpr LogMillis(double log_ms) : log_ms_(log_ms) {}

  constexpr double value() const { return log_ms_; }

  friend constexpr bool operator==(LogMillis a, LogMillis b) {
    return a.log_ms_ == b.log_ms_;
  }
  friend constexpr bool operator<(LogMillis a, LogMillis b) {
    return a.log_ms_ < b.log_ms_;
  }

 private:
  double log_ms_ = 0.0;
};

inline LogMillis Millis::ToLog() const {
  return LogMillis(std::log(std::max(ms_, 1e-6)));
}

inline Millis Millis::FromLog(LogMillis log_ms) {
  return Millis(std::exp(log_ms.value()));
}

/// A tuple/row count (cardinalities are fractional after estimation).
class Rows {
 public:
  constexpr Rows() = default;
  explicit constexpr Rows(double rows) : rows_(rows) {}

  constexpr double value() const { return rows_; }

  friend constexpr Rows operator+(Rows a, Rows b) {
    return Rows(a.rows_ + b.rows_);
  }
  friend constexpr bool operator==(Rows a, Rows b) {
    return a.rows_ == b.rows_;
  }
  friend constexpr bool operator<(Rows a, Rows b) { return a.rows_ < b.rows_; }
  friend constexpr bool operator>=(Rows a, Rows b) {
    return a.rows_ >= b.rows_;
  }

 private:
  double rows_ = 0.0;
};

/// A byte count (tuple widths, page sizes).
class Bytes {
 public:
  constexpr Bytes() = default;
  explicit constexpr Bytes(double bytes) : bytes_(bytes) {}

  constexpr double value() const { return bytes_; }

  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes(a.bytes_ + b.bytes_);
  }
  friend constexpr bool operator==(Bytes a, Bytes b) {
    return a.bytes_ == b.bytes_;
  }

 private:
  double bytes_ = 0.0;
};

/// An output/input cardinality ratio. Clamped to [0, 10] at the only
/// sanctioned construction site (FromRows): expanding operators (joins)
/// legitimately exceed 1, and 10 caps the feature range the paper uses.
class Selectivity {
 public:
  constexpr Selectivity() = default;
  explicit constexpr Selectivity(double ratio) : ratio_(ratio) {}

  /// The named Rows -> Selectivity conversion: out / max(1, in), clamped.
  static Selectivity FromRows(Rows out, Rows in) {
    double denominator = std::max(1.0, in.value());
    return Selectivity(std::clamp(out.value() / denominator, 0.0, 10.0));
  }

  constexpr double value() const { return ratio_; }

  friend constexpr bool operator==(Selectivity a, Selectivity b) {
    return a.ratio_ == b.ratio_;
  }

 private:
  double ratio_ = 0.0;
};

}  // namespace zerodb

#endif  // ZERODB_COMMON_UNITS_H_
