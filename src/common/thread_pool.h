#ifndef ZERODB_COMMON_THREAD_POOL_H_
#define ZERODB_COMMON_THREAD_POOL_H_

// The one place in the tree allowed to spawn raw threads
// (scripts/zerodb_lint.py rule raw-thread): every other component gets its
// parallelism by scheduling onto a ThreadPool, so thread counts stay
// bounded, metered (pool.* metrics) and controllable from one knob
// (ZERODB_THREADS / --threads).
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace zerodb {

/// Counts outstanding work items; Wait blocks until the count returns to
/// zero. The pool analogue of Go's sync.WaitGroup:
///   WaitGroup wg;
///   wg.Add(n);
///   for (...) pool->Schedule([&] { ...; wg.Done(); });
///   wg.Wait();
class WaitGroup {
 public:
  WaitGroup() = default;

  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void Add(size_t n) ZDB_EXCLUDES(mu_);
  void Done() ZDB_EXCLUDES(mu_);
  /// Blocks until every Add has been matched by a Done.
  void Wait() ZDB_EXCLUDES(mu_);

 private:
  Mutex mu_;
  CondVar cv_;
  size_t count_ ZDB_GUARDED_BY(mu_) = 0;
};

/// Fixed-size worker pool over one shared FIFO queue (no work stealing: at
/// this tree's task granularity — one database, one featurization chunk,
/// one gradient shard — a single annotated queue is both fast enough and
/// easy to prove correct under clang's thread-safety analysis and TSan).
///
/// Scheduling is fire-and-forget; use WaitGroup (or ParallelFor, which does
/// it for you) to join on completion. The destructor runs every task already
/// scheduled, then joins the workers — work is never dropped.
///
/// Thread-safe: Schedule may be called from any thread, including from
/// inside a task.
class ThreadPool {
 public:
  /// `num_threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue (running every scheduled task), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `fn` to run on a worker thread.
  void Schedule(std::function<void()> fn) ZDB_EXCLUDES(mu_);

  /// The process-wide pool shared by corpus generation, featurization and
  /// training. Sized by SetGlobalThreads if called, else the ZERODB_THREADS
  /// environment variable, else hardware_concurrency. Created on first use
  /// and never destroyed (leak-singleton, like MetricsRegistry::Global).
  static ThreadPool* Global();

  /// Overrides the global pool size (bench --threads=N). Must be called
  /// before the first Global() use; checked.
  static void SetGlobalThreads(size_t num_threads);

  /// Worker count of the global pool, or 0 when Global() has not been
  /// called yet. Lets late-installed PoolHooks (obs/pool_telemetry) report
  /// the pool size without forcing the pool into existence.
  static size_t GlobalCreatedThreads();

 private:
  struct Task {
    std::function<void()> fn;
    /// Enqueue timestamp in steady-clock microseconds, for the
    /// pool.steal_latency_us histogram (time a task waited before a worker
    /// picked — "stole" — it from the shared queue).
    double enqueue_us = 0.0;
  };

  void WorkerLoop(size_t worker_index) ZDB_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;
  std::deque<Task> queue_ ZDB_GUARDED_BY(mu_);
  bool shutdown_ ZDB_GUARDED_BY(mu_) = false;
  /// Workers only; created in the constructor, joined in the destructor,
  /// otherwise immutable.
  std::vector<std::thread> threads_;
};

/// Splits [begin, end) into chunks of at most `grain` indices and runs
/// `fn(chunk_begin, chunk_end)` for each, in parallel on `pool`. Blocks
/// until every chunk finished. The calling thread participates in the work,
/// so nested ParallelFor from inside a pool task cannot deadlock even when
/// all workers are busy. Chunk boundaries are deterministic, but chunks run
/// in any order on any thread: `fn` must only write to per-index state.
///
/// Serial fallbacks (pool == nullptr, a 1-thread pool, or a range no larger
/// than one grain) invoke fn(begin, end) inline on the caller.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace zerodb

#endif  // ZERODB_COMMON_THREAD_POOL_H_
