#ifndef ZERODB_COMMON_STATUS_H_
#define ZERODB_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace zerodb {

/// Error codes used across the library. Mirrors the usual database-systems
/// Status idiom (Arrow / RocksDB / LevelDB): no exceptions cross API
/// boundaries; fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIOError,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error result for operations with no payload.
///
/// [[nodiscard]] on the class makes silently dropping any returned Status a
/// compile error tree-wide (-Werror): handle it, ZDB_CHECK_OK it, or cast
/// to void with a comment saying why the discard is sound
/// (scripts/zerodb_lint.py rule discarded-status audits the casts).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the value of
/// an errored StatusOr aborts (programming error), matching absl::StatusOr.
/// [[nodiscard]] for the same reason as Status: an ignored StatusOr is an
/// ignored error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value / from error, so `return value;` and
  /// `return Status::...;` both work inside functions returning StatusOr<T>.
  StatusOr(T value) : repr_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : repr_(std::move(status)) {  // NOLINT
    ZDB_CHECK(!std::get<Status>(repr_).ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  T& value() & {
    ZDB_CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  const T& value() const& {
    ZDB_CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    ZDB_CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Aborts (with the status message) if `expr` does not evaluate to an OK
/// Status. Lives here rather than check.h because it needs the Status type.
/// Supports streaming extra context like the rest of the CHECK family.
#define ZDB_CHECK_OK(expr)                                                   \
  for (::zerodb::Status zdb_check_status = (expr); !zdb_check_status.ok();   \
       zdb_check_status = ::zerodb::Status::OK())                            \
  ::zerodb::internal_check::CheckFailureStream(#expr, __FILE__, __LINE__)    \
      << zdb_check_status.ToString() << " "

/// Debug-only ZDB_CHECK_OK: the validator expression is *not evaluated* in
/// NDEBUG builds (the dead `while` swallows it, see ZDB_DCHECK), so
/// expensive invariant walks vanish from release hot paths.
#ifdef NDEBUG
#define ZDB_DCHECK_OK(expr) \
  while (false) ZDB_CHECK_OK(expr)
#else
#define ZDB_DCHECK_OK(expr) ZDB_CHECK_OK(expr)
#endif

/// Propagates a non-OK status to the caller.
#define ZDB_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::zerodb::Status _zdb_status = (expr);      \
    if (!_zdb_status.ok()) return _zdb_status;  \
  } while (0)

/// Evaluates a StatusOr expression, assigning the value or propagating the
/// error. Usage: ZDB_ASSIGN_OR_RETURN(auto x, MakeX());
#define ZDB_ASSIGN_OR_RETURN(lhs, expr)                       \
  ZDB_ASSIGN_OR_RETURN_IMPL_(                                 \
      ZDB_STATUS_CONCAT_(_zdb_statusor, __LINE__), lhs, expr)

#define ZDB_STATUS_CONCAT_INNER_(a, b) a##b
#define ZDB_STATUS_CONCAT_(a, b) ZDB_STATUS_CONCAT_INNER_(a, b)
#define ZDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)    \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace zerodb

#endif  // ZERODB_COMMON_STATUS_H_
