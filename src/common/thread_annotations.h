#ifndef ZERODB_COMMON_THREAD_ANNOTATIONS_H_
#define ZERODB_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes behind ZDB_ macros, so locking
/// contracts are stated in code and checked at compile time wherever the
/// tree builds with clang (-Wthread-safety -Wthread-safety-beta, promoted
/// to errors under -Werror; see the thread-safety-clang CI job). Under GCC
/// the macros expand to nothing and only document intent.
///
/// Usage rules (see DESIGN.md "Concurrency discipline"):
///  - every member a lock protects is tagged ZDB_GUARDED_BY(mu_),
///  - every private helper expecting the lock held is tagged
///    ZDB_REQUIRES(mu_),
///  - public methods that take the lock themselves are tagged
///    ZDB_EXCLUDES(mu_) when re-entry would deadlock.
/// Use the annotated zerodb::Mutex / MutexLock / CondVar from
/// common/sync.h — raw std::mutex outside src/common/sync is rejected by
/// scripts/zerodb_lint.py (rule raw-mutex).

#if defined(__clang__)
#define ZDB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ZDB_THREAD_ANNOTATION_(x)  // no-op: GCC has no thread-safety analysis
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define ZDB_CAPABILITY(x) ZDB_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases
/// a capability.
#define ZDB_SCOPED_CAPABILITY ZDB_THREAD_ANNOTATION_(scoped_lockable)

/// Data members: readable/writable only while holding `x`.
#define ZDB_GUARDED_BY(x) ZDB_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer members: the *pointee* is protected by `x` (the pointer itself
/// is not).
#define ZDB_PT_GUARDED_BY(x) ZDB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function precondition: caller must hold the capability (exclusively /
/// shared).
#define ZDB_REQUIRES(...) \
  ZDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define ZDB_REQUIRES_SHARED(...) \
  ZDB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function precondition: caller must NOT hold the capability (the function
/// acquires it itself; calling with it held would deadlock).
#define ZDB_EXCLUDES(...) ZDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function effect: acquires / releases the capability.
#define ZDB_ACQUIRE(...) \
  ZDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ZDB_ACQUIRE_SHARED(...) \
  ZDB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define ZDB_RELEASE(...) \
  ZDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define ZDB_RELEASE_SHARED(...) \
  ZDB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function effect: acquires the capability when returning `ret`.
#define ZDB_TRY_ACQUIRE(ret, ...) \
  ZDB_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Runtime assertion (e.g. Mutex::AssertHeld) the analysis trusts.
#define ZDB_ASSERT_CAPABILITY(x) \
  ZDB_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the named capability.
#define ZDB_RETURN_CAPABILITY(x) ZDB_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's locking cannot be expressed to the
/// analysis. Each use needs a comment saying why.
#define ZDB_NO_THREAD_SAFETY_ANALYSIS \
  ZDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // ZERODB_COMMON_THREAD_ANNOTATIONS_H_
