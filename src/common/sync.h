#ifndef ZERODB_COMMON_SYNC_H_
#define ZERODB_COMMON_SYNC_H_

// The one place in the tree allowed to touch <mutex> /
// <condition_variable> directly (scripts/zerodb_lint.py rule raw-mutex):
// everything else locks through these annotated wrappers so clang's
// thread-safety analysis sees every acquisition in the program.
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace zerodb {

/// Annotated exclusive lock. Same cost as std::mutex; the annotations let
/// clang verify at compile time that every ZDB_GUARDED_BY member is only
/// touched with this mutex held.
class ZDB_CAPABILITY("mutex") Mutex {
 public:
  constexpr Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ZDB_ACQUIRE() { mu_.lock(); }
  void Unlock() ZDB_RELEASE() { mu_.unlock(); }
  bool TryLock() ZDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documents (to the reader and to the analysis) that the calling context
  /// holds this mutex — used in private helpers reached only from locked
  /// public methods. No runtime cost.
  void AssertHeld() const ZDB_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for a zerodb::Mutex — the only idiomatic way to hold one:
///   MutexLock lock(&mu_);
/// Scoped-capability annotated, so clang knows the mutex is held until the
/// end of the scope.
class ZDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ZDB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() ZDB_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with zerodb::Mutex. Wait atomically releases
/// the caller-held mutex and reacquires it before returning, so
/// ZDB_REQUIRES tells the analysis the lock is held on both sides:
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(&mu_);
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — always wait in a
  /// predicate loop).
  void Wait(Mutex* mu) ZDB_REQUIRES(mu);

  /// Blocks until notified or `timeout_ms` elapsed. Returns false on
  /// timeout, true when notified (callers still re-check the predicate).
  bool WaitFor(Mutex* mu, double timeout_ms) ZDB_REQUIRES(mu);

  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable cv_;
};

}  // namespace zerodb

#endif  // ZERODB_COMMON_SYNC_H_
