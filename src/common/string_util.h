#ifndef ZERODB_COMMON_STRING_UTIL_H_
#define ZERODB_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace zerodb {

/// Joins the pieces with the separator: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& pieces,
                 const std::string& separator);

/// Splits on the single-character delimiter; empty pieces are kept.
std::vector<std::string> Split(const std::string& text, char delimiter);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Left-pads / right-pads with spaces to the given width (no truncation).
std::string PadLeft(const std::string& text, size_t width);
std::string PadRight(const std::string& text, size_t width);

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits);

}  // namespace zerodb

#endif  // ZERODB_COMMON_STRING_UTIL_H_
