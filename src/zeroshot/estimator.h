#ifndef ZERODB_ZEROSHOT_ESTIMATOR_H_
#define ZERODB_ZEROSHOT_ESTIMATOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "datagen/corpus.h"
#include "models/zeroshot_model.h"
#include "obs/quality.h"
#include "train/dataset.h"
#include "train/trainer.h"
#include "workload/benchmarks.h"
#include "zeroshot/predict_cache.h"

namespace zerodb::zeroshot {

/// End-to-end configuration for training a zero-shot cost model on a corpus
/// of databases. Defaults are sized for a single-core machine; the paper
/// used 5,000 queries per database — scale `queries_per_database` up when
/// you have the budget.
struct ZeroShotConfig {
  size_t queries_per_database = 400;
  workload::WorkloadConfig workload = workload::TrainingWorkloadConfig();
  train::CollectOptions collect;
  train::TrainerOptions trainer;
  models::ZeroShotCostModel::Options model;
  uint64_t seed = 7;

  /// Serving knobs. Predictions are memoized by plan fingerprint + database
  /// identity (set `cache.capacity = 0` to disable); cache misses go through
  /// the model's batched ForwardBatch in chunks of `serve_batch_size`
  /// records (0 = one forward pass per PredictMs call, no chunking).
  PredictCacheOptions cache;
  size_t serve_batch_size = 0;
};

/// The public face of the reproduction: train once on many databases, then
/// predict runtimes for queries on a database the model has never seen.
class ZeroShotEstimator {
 public:
  /// Collects training workloads on every corpus database and trains the
  /// model. The corpus must outlive the estimator (records keep env
  /// pointers).
  static ZeroShotEstimator Train(
      const std::vector<datagen::DatabaseEnv>& corpus,
      const ZeroShotConfig& config);

  /// Trains from pre-collected records (used by benches that sweep corpus
  /// subsets without re-collecting).
  static ZeroShotEstimator TrainFromRecords(
      std::vector<train::QueryRecord> records, const ZeroShotConfig& config);

  /// Predicts runtimes for already-built records (e.g. an executed
  /// evaluation workload; required for exact-cardinality mode).
  std::vector<Millis> PredictMs(
      const std::vector<const train::QueryRecord*>& records);

  /// The deployable path: plans `query` on the (unseen) database and
  /// predicts its runtime without executing anything. Only valid for
  /// estimated-cardinality models. `planner_options` may declare
  /// hypothetical indexes — the What-If mode of Section 4.1.
  StatusOr<Millis> EstimateQueryMs(
      const datagen::DatabaseEnv& env, const plan::QuerySpec& query,
      const optimizer::PlannerOptions& planner_options = {});

  /// Plans and prices a whole workload in one batched forward pass (cache
  /// misses only): the serving-path companion to EstimateQueryMs for
  /// callers like the what-if advisor that price N queries against the
  /// same hypothetical index set. One entry per query, in order;
  /// unplannable queries carry the planner's status, and a model in
  /// exact-cardinality mode fails every entry.
  std::vector<StatusOr<Millis>> EstimateQueryBatchMs(
      const datagen::DatabaseEnv& env,
      const std::vector<plan::QuerySpec>& queries,
      const optimizer::PlannerOptions& planner_options = {});

  /// Feeds one serving-time (prediction, observed runtime) pair into the
  /// online quality monitor — call it whenever a predicted query was
  /// actually executed. PredictMs does this automatically for records that
  /// carry a measured runtime.
  void RecordFeedback(Millis predicted, Millis actual) {
    // The quality monitor is generic obs-layer code: it compares the two
    // in log-q-error space and never mixes them with other quantities, so
    // the unit types stop at this boundary.
    if (quality_ != nullptr) quality_->Record(predicted.value(), actual.value());
  }

  /// Rolling q-error / drift state for this model's live predictions.
  /// Non-null after Train/TrainFromRecords.
  const obs::PredictionQualityMonitor* quality_monitor() const {
    return quality_.get();
  }

  /// The plan-fingerprint prediction cache fronting the model; non-null
  /// after Train/TrainFromRecords unless `config.cache.capacity` was 0.
  const PredictCache* predict_cache() const { return cache_.get(); }

  /// Drops every cached prediction. Runs automatically whenever the
  /// quality monitor reports a new drift event; call it manually after any
  /// out-of-band weight change (LoadWeights-style swaps).
  void InvalidatePredictionCache() {
    if (cache_ != nullptr) cache_->Invalidate();
  }

  models::ZeroShotCostModel& model() { return *model_; }
  const train::TrainResult& train_result() const { return train_result_; }
  const std::vector<train::QueryRecord>& training_records() const {
    return training_records_;
  }

 private:
  ZeroShotEstimator() = default;

  /// Invalidates the cache when the drift detector fired since the last
  /// check — stale predictions from a drifting model must not outlive the
  /// signal that flagged them.
  void MaybeInvalidateOnDrift();

  /// Runs ForwardBatch over `records` in serve_batch_size chunks.
  std::vector<Millis> ForwardInChunks(
      const std::vector<const train::QueryRecord*>& records);

  std::unique_ptr<models::ZeroShotCostModel> model_;
  train::TrainResult train_result_;
  std::vector<train::QueryRecord> training_records_;
  std::unique_ptr<obs::PredictionQualityMonitor> quality_;
  std::unique_ptr<PredictCache> cache_;
  size_t serve_batch_size_ = 0;
  int64_t seen_drift_events_ = 0;
};

/// Collects the zero-shot training set: `queries_per_database` labeled
/// records from each corpus database.
///
/// Databases are collected in parallel on `pool` (nullptr forces serial).
/// Per-database workload/noise seeds are drawn up front in the serial draw
/// order and the per-database record batches concatenated in corpus order,
/// so the record set is bit-identical for any thread count.
std::vector<train::QueryRecord> CollectCorpusRecords(
    const std::vector<datagen::DatabaseEnv>& corpus,
    const ZeroShotConfig& config, ThreadPool* pool = ThreadPool::Global());

}  // namespace zerodb::zeroshot

#endif  // ZERODB_ZEROSHOT_ESTIMATOR_H_
