#ifndef ZERODB_ZEROSHOT_PREDICT_CACHE_H_
#define ZERODB_ZEROSHOT_PREDICT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/sync.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace zerodb::zeroshot {

/// Knobs for the plan-fingerprint prediction cache.
struct PredictCacheOptions {
  /// Maximum resident entries. 0 disables the cache entirely: Lookup
  /// always misses (without counting) and Insert is a no-op.
  size_t capacity = 4096;

  /// Entry lifetime in milliseconds; 0 keeps entries until evicted or
  /// invalidated. TTL bounds how long a stale prediction can outlive a
  /// statistics refresh that the fingerprint cannot see.
  double ttl_ms = 0.0;

  /// Metric sink for cache.{hit,miss,evict,invalidation} counters and the
  /// cache.{hit_rate,size} gauges; nullptr = MetricsRegistry::Global().
  obs::MetricsRegistry* registry = nullptr;

  /// Injectable monotonic clock in milliseconds, consulted only when
  /// ttl_ms > 0 (tests pin it; the default reads steady_clock).
  std::function<double()> now_ms;
};

/// Thread-safe LRU map from 64-bit plan fingerprints
/// (plan::FingerprintPlan mixed with database identity — see
/// ZeroShotEstimator) to predicted runtimes. Sits in front of the model's
/// forward pass on the serving path: the what-if advisor's greedy search
/// re-prices mostly-identical (query, index set) plans every round, and a
/// hit turns a ~100us forward pass into a hash probe.
///
/// All state sits behind one annotated Mutex — every operation is a few
/// pointer moves, so a striped design would buy nothing at the call rates
/// the estimator sees. Counters are mirrored into the obs registry and
/// kept locally so tests work against a disabled registry.
class PredictCache {
 public:
  explicit PredictCache(PredictCacheOptions options = {});

  PredictCache(const PredictCache&) = delete;
  PredictCache& operator=(const PredictCache&) = delete;

  /// Returns the cached prediction and refreshes its LRU position, or
  /// nullopt on miss. Entries past their TTL count as a miss plus an
  /// eviction.
  std::optional<Millis> Lookup(uint64_t key) ZDB_EXCLUDES(mu_);

  /// Inserts (or refreshes) a prediction, evicting the least recently used
  /// entry when over capacity.
  void Insert(uint64_t key, Millis predicted) ZDB_EXCLUDES(mu_);

  /// Drops every entry. Called on model retrain and on a new drift event
  /// from the PredictionQualityMonitor — cached predictions are only as
  /// trustworthy as the weights that produced them.
  void Invalidate() ZDB_EXCLUDES(mu_);

  size_t size() const ZDB_EXCLUDES(mu_);
  int64_t hits() const ZDB_EXCLUDES(mu_);
  int64_t misses() const ZDB_EXCLUDES(mu_);
  int64_t evictions() const ZDB_EXCLUDES(mu_);
  int64_t invalidations() const ZDB_EXCLUDES(mu_);

  const PredictCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    uint64_t key = 0;
    Millis predicted;
    double inserted_at_ms = 0.0;
  };
  using LruList = std::list<Entry>;

  double NowMs() const;
  void UpdateGaugesLocked() ZDB_REQUIRES(mu_);

  const PredictCacheOptions options_;

  // Registry-owned metric objects; cached here so the hot path never
  // touches the registry's name map.
  obs::Counter* hit_counter_;
  obs::Counter* miss_counter_;
  obs::Counter* evict_counter_;
  obs::Counter* invalidation_counter_;
  obs::Gauge* hit_rate_gauge_;
  obs::Gauge* size_gauge_;

  mutable Mutex mu_;
  LruList lru_ ZDB_GUARDED_BY(mu_);  ///< front = most recently used
  std::unordered_map<uint64_t, LruList::iterator> index_ ZDB_GUARDED_BY(mu_);
  int64_t hits_ ZDB_GUARDED_BY(mu_) = 0;
  int64_t misses_ ZDB_GUARDED_BY(mu_) = 0;
  int64_t evictions_ ZDB_GUARDED_BY(mu_) = 0;
  int64_t invalidations_ ZDB_GUARDED_BY(mu_) = 0;
};

}  // namespace zerodb::zeroshot

#endif  // ZERODB_ZEROSHOT_PREDICT_CACHE_H_
