#include "zeroshot/predict_cache.h"

#include <chrono>

#include "common/sync.h"

namespace zerodb::zeroshot {

namespace {

obs::MetricsRegistry& RegistryOrGlobal(obs::MetricsRegistry* registry) {
  return registry != nullptr ? *registry : obs::MetricsRegistry::Global();
}

double SteadyNowMs() {
  // TTL expiry is inherently wall-clock; predictions themselves stay
  // deterministic (expiry only forces a recompute of the same value).
  // zerodb-lint: allow(nondet-call)
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

}  // namespace

PredictCache::PredictCache(PredictCacheOptions options)
    : options_(std::move(options)),
      hit_counter_(RegistryOrGlobal(options_.registry)
                       .GetCounter("cache.hit")),
      miss_counter_(RegistryOrGlobal(options_.registry)
                        .GetCounter("cache.miss")),
      evict_counter_(RegistryOrGlobal(options_.registry)
                         .GetCounter("cache.evict")),
      invalidation_counter_(RegistryOrGlobal(options_.registry)
                                .GetCounter("cache.invalidation")),
      hit_rate_gauge_(RegistryOrGlobal(options_.registry)
                          .GetGauge("cache.hit_rate")),
      size_gauge_(RegistryOrGlobal(options_.registry)
                      .GetGauge("cache.size")) {}

double PredictCache::NowMs() const {
  if (options_.now_ms != nullptr) return options_.now_ms();
  return SteadyNowMs();
}

void PredictCache::UpdateGaugesLocked() {
  mu_.AssertHeld();
  const int64_t lookups = hits_ + misses_;
  if (lookups > 0) {
    hit_rate_gauge_->Set(static_cast<double>(hits_) /
                         static_cast<double>(lookups));
  }
  size_gauge_->Set(static_cast<double>(lru_.size()));
}

std::optional<Millis> PredictCache::Lookup(uint64_t key) {
  if (options_.capacity == 0) return std::nullopt;
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    miss_counter_->Add(1);
    UpdateGaugesLocked();
    return std::nullopt;
  }
  if (options_.ttl_ms > 0.0 &&
      NowMs() - it->second->inserted_at_ms > options_.ttl_ms) {
    // Expired: drop it and report a miss (plus the eviction) so the caller
    // recomputes and re-inserts a fresh value.
    lru_.erase(it->second);
    index_.erase(it);
    ++misses_;
    ++evictions_;
    miss_counter_->Add(1);
    evict_counter_->Add(1);
    UpdateGaugesLocked();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  hit_counter_->Add(1);
  UpdateGaugesLocked();
  return it->second->predicted;
}

void PredictCache::Insert(uint64_t key, Millis predicted) {
  if (options_.capacity == 0) return;
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->predicted = predicted;
    it->second->inserted_at_ms = options_.ttl_ms > 0.0 ? NowMs() : 0.0;
    lru_.splice(lru_.begin(), lru_, it->second);
    UpdateGaugesLocked();
    return;
  }
  Entry entry;
  entry.key = key;
  entry.predicted = predicted;
  entry.inserted_at_ms = options_.ttl_ms > 0.0 ? NowMs() : 0.0;
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  while (lru_.size() > options_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    evict_counter_->Add(1);
  }
  UpdateGaugesLocked();
}

void PredictCache::Invalidate() {
  MutexLock lock(&mu_);
  lru_.clear();
  index_.clear();
  ++invalidations_;
  invalidation_counter_->Add(1);
  UpdateGaugesLocked();
}

size_t PredictCache::size() const {
  MutexLock lock(&mu_);
  return lru_.size();
}

int64_t PredictCache::hits() const {
  MutexLock lock(&mu_);
  return hits_;
}

int64_t PredictCache::misses() const {
  MutexLock lock(&mu_);
  return misses_;
}

int64_t PredictCache::evictions() const {
  MutexLock lock(&mu_);
  return evictions_;
}

int64_t PredictCache::invalidations() const {
  MutexLock lock(&mu_);
  return invalidations_;
}

}  // namespace zerodb::zeroshot
