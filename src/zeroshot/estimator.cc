#include "zeroshot/estimator.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace_event.h"
#include "plan/fingerprint.h"

namespace zerodb::zeroshot {

namespace {

// Inference-side telemetry: how often the zero-shot "central brain" is
// consulted and what each call costs. Function-local statics keep the
// registry lookups off the hot path.
struct EstimatorMetrics {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* predict_calls = registry.GetCounter("zeroshot.predict_calls");
  obs::Counter* predictions = registry.GetCounter("zeroshot.predictions");
  obs::Counter* estimate_query_calls =
      registry.GetCounter("zeroshot.estimate_query_calls");
  obs::Counter* training_records =
      registry.GetCounter("zeroshot.training_records_collected");
  obs::Histogram* predict_us = registry.GetHistogram("zeroshot.predict_us");
  obs::Histogram* plan_us =
      registry.GetHistogram("zeroshot.estimate_plan_us");

  static EstimatorMetrics& Get() {
    static EstimatorMetrics* metrics = new EstimatorMetrics();
    return *metrics;
  }
};

// Features depend on the plan *and* on the database whose statistics
// featurize it, so the cache key mixes database identity (env address +
// name) into the canonical plan fingerprint. Envs outlive the estimator —
// records keep env pointers by the same contract — so the address is
// stable for the cache's lifetime; the name guards against an env being
// destroyed and another reallocated at the same address across runs of a
// bench loop.
uint64_t CacheKey(const train::QueryRecord& record) {
  uint64_t key = plan::FingerprintPlan(record.plan);
  key = plan::FingerprintCombine(
      key, static_cast<uint64_t>(reinterpret_cast<uintptr_t>(record.env)));
  return plan::FingerprintCombine(key,
                                  plan::FingerprintString(record.db_name));
}

}  // namespace

std::vector<train::QueryRecord> CollectCorpusRecords(
    const std::vector<datagen::DatabaseEnv>& corpus,
    const ZeroShotConfig& config, ThreadPool* pool) {
  // Pre-draw each database's (noise seed, workload seed) pair in the serial
  // draw order, then collect every database independently into its own slot:
  // the concatenation below is bit-identical for any thread count.
  struct DbSeeds {
    uint64_t noise_seed = 0;
    uint64_t workload_seed = 0;
  };
  Rng seed_rng(config.seed);
  std::vector<DbSeeds> seeds(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    seeds[i].noise_seed = seed_rng.NextUint64();
    seeds[i].workload_seed = seed_rng.NextUint64();
  }
  std::vector<std::vector<train::QueryRecord>> per_db(corpus.size());
  ParallelFor(pool, 0, corpus.size(), /*grain=*/1,
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  train::CollectOptions collect = config.collect;
                  collect.noise_seed = seeds[i].noise_seed;
                  per_db[i] = train::CollectRandomWorkload(
                      corpus[i], config.workload, config.queries_per_database,
                      seeds[i].workload_seed, collect);
                  ZDB_LOG(Debug)
                      << corpus[i].db->name() << ": collected "
                      << per_db[i].size() << " training records";
                }
              });
  std::vector<train::QueryRecord> records;
  for (std::vector<train::QueryRecord>& db_records : per_db) {
    for (train::QueryRecord& record : db_records) {
      records.push_back(std::move(record));
    }
  }
  EstimatorMetrics::Get().training_records->Add(
      static_cast<int64_t>(records.size()));
  return records;
}

ZeroShotEstimator ZeroShotEstimator::Train(
    const std::vector<datagen::DatabaseEnv>& corpus,
    const ZeroShotConfig& config) {
  return TrainFromRecords(CollectCorpusRecords(corpus, config), config);
}

ZeroShotEstimator ZeroShotEstimator::TrainFromRecords(
    std::vector<train::QueryRecord> records, const ZeroShotConfig& config) {
  ZDB_CHECK(!records.empty()) << "no training records collected";
  ZeroShotEstimator estimator;
  estimator.training_records_ = std::move(records);
  estimator.model_ =
      std::make_unique<models::ZeroShotCostModel>(config.model);
  estimator.train_result_ = train::TrainModel(
      estimator.model_.get(), train::MakeView(estimator.training_records_),
      config.trainer);
  estimator.quality_ = std::make_unique<obs::PredictionQualityMonitor>();
  // The cache is created after training, so it starts empty — (re)training
  // always begins with an invalidated cache by construction.
  if (config.cache.capacity > 0) {
    estimator.cache_ = std::make_unique<PredictCache>(config.cache);
  }
  estimator.serve_batch_size_ = config.serve_batch_size;
  return estimator;
}

void ZeroShotEstimator::MaybeInvalidateOnDrift() {
  if (quality_ == nullptr || cache_ == nullptr) return;
  const int64_t events = quality_->drift_events();
  if (events > seen_drift_events_) {
    seen_drift_events_ = events;
    ZDB_LOG(Warning) << "estimator: drift event detected; invalidating "
                     << cache_->size() << " cached predictions";
    cache_->Invalidate();
  }
}

std::vector<Millis> ZeroShotEstimator::ForwardInChunks(
    const std::vector<const train::QueryRecord*>& records) {
  const size_t chunk =
      serve_batch_size_ == 0 ? records.size() : serve_batch_size_;
  if (chunk >= records.size()) return model_->ForwardBatch(records);
  std::vector<Millis> out;
  out.reserve(records.size());
  for (size_t begin = 0; begin < records.size(); begin += chunk) {
    const size_t end = std::min(begin + chunk, records.size());
    std::vector<const train::QueryRecord*> slice(
        records.begin() + static_cast<std::ptrdiff_t>(begin),
        records.begin() + static_cast<std::ptrdiff_t>(end));
    std::vector<Millis> part = model_->ForwardBatch(slice);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<Millis> ZeroShotEstimator::PredictMs(
    const std::vector<const train::QueryRecord*>& records) {
  ZDB_CHECK(model_ != nullptr);
  EstimatorMetrics& metrics = EstimatorMetrics::Get();
  metrics.predict_calls->Add(1);
  metrics.predictions->Add(static_cast<int64_t>(records.size()));
  obs::ScopedTimer timer(metrics.registry.enabled() ? metrics.predict_us
                                                    : nullptr);
  MaybeInvalidateOnDrift();
  std::vector<Millis> predicted(records.size());
  std::vector<uint64_t> miss_keys;
  std::vector<size_t> miss_positions;
  std::vector<const train::QueryRecord*> miss_records;
  if (cache_ != nullptr) {
    miss_keys.reserve(records.size());
    miss_positions.reserve(records.size());
    miss_records.reserve(records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      const uint64_t key = CacheKey(*records[i]);
      if (std::optional<Millis> hit = cache_->Lookup(key)) {
        predicted[i] = *hit;
        continue;
      }
      miss_keys.push_back(key);
      miss_positions.push_back(i);
      miss_records.push_back(records[i]);
    }
  } else {
    miss_positions.reserve(records.size());
    for (size_t i = 0; i < records.size(); ++i) miss_positions.push_back(i);
    miss_records = records;
  }
  if (!miss_records.empty()) {
    obs::TimelineScope scope("zeroshot.predict", "zeroshot");
    scope.AddArg("records", static_cast<double>(records.size()));
    scope.AddArg("cache_misses", static_cast<double>(miss_records.size()));
    std::vector<Millis> fresh = ForwardInChunks(miss_records);
    for (size_t j = 0; j < miss_positions.size(); ++j) {
      predicted[miss_positions[j]] = fresh[j];
      if (cache_ != nullptr) cache_->Insert(miss_keys[j], fresh[j]);
    }
  }
  // Records that carry a measured runtime (executed evaluation workloads)
  // double as serving-time feedback for the quality monitor.
  if (quality_ != nullptr) {
    for (size_t i = 0; i < records.size(); ++i) {
      if (records[i]->runtime_ms > 0.0) {
        quality_->Record(predicted[i].value(), records[i]->runtime_ms);
      }
    }
  }
  return predicted;
}

StatusOr<Millis> ZeroShotEstimator::EstimateQueryMs(
    const datagen::DatabaseEnv& env, const plan::QuerySpec& query,
    const optimizer::PlannerOptions& planner_options) {
  ZDB_CHECK(model_ != nullptr);
  if (model_->cardinality_mode() != featurize::CardinalityMode::kEstimated) {
    return Status::InvalidArgument(
        "EstimateQueryMs requires an estimated-cardinality model (exact "
        "cardinalities only exist after execution)");
  }
  EstimatorMetrics& metrics = EstimatorMetrics::Get();
  metrics.estimate_query_calls->Add(1);
  obs::TimelineScope scope("zeroshot.estimate_query", "zeroshot");
  optimizer::Planner planner(env.db.get(), &env.stats, optimizer::CostParams(),
                             planner_options);
  plan::PhysicalPlan plan;
  {
    obs::ScopedTimer timer(metrics.registry.enabled() ? metrics.plan_us
                                                      : nullptr);
    ZDB_ASSIGN_OR_RETURN(plan, planner.Plan(query));
  }
  train::QueryRecord record;
  record.env = &env;
  record.db_name = env.db->name();
  record.query = query;
  record.plan = std::move(plan);
  record.opt_cost = record.plan.root->est_cost;
  std::vector<const train::QueryRecord*> view = {&record};
  // Through PredictMs (not the model directly) so the prediction is served
  // from — and inserted into — the fingerprint cache.
  return PredictMs(view)[0];
}

std::vector<StatusOr<Millis>> ZeroShotEstimator::EstimateQueryBatchMs(
    const datagen::DatabaseEnv& env,
    const std::vector<plan::QuerySpec>& queries,
    const optimizer::PlannerOptions& planner_options) {
  ZDB_CHECK(model_ != nullptr);
  std::vector<StatusOr<Millis>> out;
  out.reserve(queries.size());
  if (model_->cardinality_mode() != featurize::CardinalityMode::kEstimated) {
    for (size_t i = 0; i < queries.size(); ++i) {
      out.emplace_back(Status::InvalidArgument(
          "EstimateQueryBatchMs requires an estimated-cardinality model "
          "(exact cardinalities only exist after execution)"));
    }
    return out;
  }
  EstimatorMetrics& metrics = EstimatorMetrics::Get();
  metrics.estimate_query_calls->Add(static_cast<int64_t>(queries.size()));
  obs::TimelineScope scope("zeroshot.estimate_batch", "zeroshot");
  scope.AddArg("queries", static_cast<double>(queries.size()));
  optimizer::Planner planner(env.db.get(), &env.stats, optimizer::CostParams(),
                             planner_options);
  std::vector<train::QueryRecord> records;
  records.reserve(queries.size());
  std::vector<size_t> positions;  // out[] index each record prices
  positions.reserve(queries.size());
  for (const plan::QuerySpec& query : queries) {
    StatusOr<plan::PhysicalPlan> planned = [&] {
      obs::ScopedTimer timer(metrics.registry.enabled() ? metrics.plan_us
                                                        : nullptr);
      return planner.Plan(query);
    }();
    if (!planned.ok()) {
      out.emplace_back(planned.status());
      continue;
    }
    train::QueryRecord record;
    record.env = &env;
    record.db_name = env.db->name();
    record.query = query;
    record.plan = std::move(*planned);
    record.opt_cost = record.plan.root->est_cost;
    positions.push_back(out.size());
    records.push_back(std::move(record));
    out.emplace_back(Millis(0.0));  // overwritten by the batched prediction
  }
  if (!records.empty()) {
    std::vector<Millis> predicted = PredictMs(train::MakeView(records));
    for (size_t j = 0; j < positions.size(); ++j) {
      out[positions[j]] = predicted[j];
    }
  }
  return out;
}

}  // namespace zerodb::zeroshot
