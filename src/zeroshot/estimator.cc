#include "zeroshot/estimator.h"

#include "common/check.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace_event.h"

namespace zerodb::zeroshot {

namespace {

// Inference-side telemetry: how often the zero-shot "central brain" is
// consulted and what each call costs. Function-local statics keep the
// registry lookups off the hot path.
struct EstimatorMetrics {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* predict_calls = registry.GetCounter("zeroshot.predict_calls");
  obs::Counter* predictions = registry.GetCounter("zeroshot.predictions");
  obs::Counter* estimate_query_calls =
      registry.GetCounter("zeroshot.estimate_query_calls");
  obs::Counter* training_records =
      registry.GetCounter("zeroshot.training_records_collected");
  obs::Histogram* predict_us = registry.GetHistogram("zeroshot.predict_us");
  obs::Histogram* plan_us =
      registry.GetHistogram("zeroshot.estimate_plan_us");

  static EstimatorMetrics& Get() {
    static EstimatorMetrics* metrics = new EstimatorMetrics();
    return *metrics;
  }
};

}  // namespace

std::vector<train::QueryRecord> CollectCorpusRecords(
    const std::vector<datagen::DatabaseEnv>& corpus,
    const ZeroShotConfig& config, ThreadPool* pool) {
  // Pre-draw each database's (noise seed, workload seed) pair in the serial
  // draw order, then collect every database independently into its own slot:
  // the concatenation below is bit-identical for any thread count.
  struct DbSeeds {
    uint64_t noise_seed = 0;
    uint64_t workload_seed = 0;
  };
  Rng seed_rng(config.seed);
  std::vector<DbSeeds> seeds(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    seeds[i].noise_seed = seed_rng.NextUint64();
    seeds[i].workload_seed = seed_rng.NextUint64();
  }
  std::vector<std::vector<train::QueryRecord>> per_db(corpus.size());
  ParallelFor(pool, 0, corpus.size(), /*grain=*/1,
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  train::CollectOptions collect = config.collect;
                  collect.noise_seed = seeds[i].noise_seed;
                  per_db[i] = train::CollectRandomWorkload(
                      corpus[i], config.workload, config.queries_per_database,
                      seeds[i].workload_seed, collect);
                  ZDB_LOG(Debug)
                      << corpus[i].db->name() << ": collected "
                      << per_db[i].size() << " training records";
                }
              });
  std::vector<train::QueryRecord> records;
  for (std::vector<train::QueryRecord>& db_records : per_db) {
    for (train::QueryRecord& record : db_records) {
      records.push_back(std::move(record));
    }
  }
  EstimatorMetrics::Get().training_records->Add(
      static_cast<int64_t>(records.size()));
  return records;
}

ZeroShotEstimator ZeroShotEstimator::Train(
    const std::vector<datagen::DatabaseEnv>& corpus,
    const ZeroShotConfig& config) {
  return TrainFromRecords(CollectCorpusRecords(corpus, config), config);
}

ZeroShotEstimator ZeroShotEstimator::TrainFromRecords(
    std::vector<train::QueryRecord> records, const ZeroShotConfig& config) {
  ZDB_CHECK(!records.empty()) << "no training records collected";
  ZeroShotEstimator estimator;
  estimator.training_records_ = std::move(records);
  estimator.model_ =
      std::make_unique<models::ZeroShotCostModel>(config.model);
  estimator.train_result_ = train::TrainModel(
      estimator.model_.get(), train::MakeView(estimator.training_records_),
      config.trainer);
  estimator.quality_ = std::make_unique<obs::PredictionQualityMonitor>();
  return estimator;
}

std::vector<Millis> ZeroShotEstimator::PredictMs(
    const std::vector<const train::QueryRecord*>& records) {
  ZDB_CHECK(model_ != nullptr);
  EstimatorMetrics& metrics = EstimatorMetrics::Get();
  metrics.predict_calls->Add(1);
  metrics.predictions->Add(static_cast<int64_t>(records.size()));
  obs::ScopedTimer timer(metrics.registry.enabled() ? metrics.predict_us
                                                    : nullptr);
  std::vector<Millis> predicted;
  {
    obs::TimelineScope scope("zeroshot.predict", "zeroshot");
    scope.AddArg("records", static_cast<double>(records.size()));
    predicted = model_->PredictMs(records);
  }
  // Records that carry a measured runtime (executed evaluation workloads)
  // double as serving-time feedback for the quality monitor.
  if (quality_ != nullptr) {
    for (size_t i = 0; i < records.size(); ++i) {
      if (records[i]->runtime_ms > 0.0) {
        quality_->Record(predicted[i].value(), records[i]->runtime_ms);
      }
    }
  }
  return predicted;
}

StatusOr<Millis> ZeroShotEstimator::EstimateQueryMs(
    const datagen::DatabaseEnv& env, const plan::QuerySpec& query,
    const optimizer::PlannerOptions& planner_options) {
  ZDB_CHECK(model_ != nullptr);
  if (model_->cardinality_mode() != featurize::CardinalityMode::kEstimated) {
    return Status::InvalidArgument(
        "EstimateQueryMs requires an estimated-cardinality model (exact "
        "cardinalities only exist after execution)");
  }
  EstimatorMetrics& metrics = EstimatorMetrics::Get();
  metrics.estimate_query_calls->Add(1);
  obs::TimelineScope scope("zeroshot.estimate_query", "zeroshot");
  optimizer::Planner planner(env.db.get(), &env.stats, optimizer::CostParams(),
                             planner_options);
  plan::PhysicalPlan plan;
  {
    obs::ScopedTimer timer(metrics.registry.enabled() ? metrics.plan_us
                                                      : nullptr);
    ZDB_ASSIGN_OR_RETURN(plan, planner.Plan(query));
  }
  train::QueryRecord record;
  record.env = &env;
  record.db_name = env.db->name();
  record.query = query;
  record.plan = std::move(plan);
  record.opt_cost = record.plan.root->est_cost;
  std::vector<const train::QueryRecord*> view = {&record};
  return model_->PredictMs(view)[0];
}

}  // namespace zerodb::zeroshot
