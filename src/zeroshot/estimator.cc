#include "zeroshot/estimator.h"

#include "common/check.h"
#include "common/logging.h"

namespace zerodb::zeroshot {

std::vector<train::QueryRecord> CollectCorpusRecords(
    const std::vector<datagen::DatabaseEnv>& corpus,
    const ZeroShotConfig& config) {
  std::vector<train::QueryRecord> records;
  Rng seed_rng(config.seed);
  for (const datagen::DatabaseEnv& env : corpus) {
    train::CollectOptions collect = config.collect;
    collect.noise_seed = seed_rng.NextUint64();
    std::vector<train::QueryRecord> db_records = train::CollectRandomWorkload(
        env, config.workload, config.queries_per_database,
        seed_rng.NextUint64(), collect);
    ZDB_LOG(Debug) << env.db->name() << ": collected " << db_records.size()
                   << " training records";
    for (train::QueryRecord& record : db_records) {
      records.push_back(std::move(record));
    }
  }
  return records;
}

ZeroShotEstimator ZeroShotEstimator::Train(
    const std::vector<datagen::DatabaseEnv>& corpus,
    const ZeroShotConfig& config) {
  return TrainFromRecords(CollectCorpusRecords(corpus, config), config);
}

ZeroShotEstimator ZeroShotEstimator::TrainFromRecords(
    std::vector<train::QueryRecord> records, const ZeroShotConfig& config) {
  ZDB_CHECK(!records.empty()) << "no training records collected";
  ZeroShotEstimator estimator;
  estimator.training_records_ = std::move(records);
  estimator.model_ =
      std::make_unique<models::ZeroShotCostModel>(config.model);
  estimator.train_result_ = train::TrainModel(
      estimator.model_.get(), train::MakeView(estimator.training_records_),
      config.trainer);
  return estimator;
}

std::vector<double> ZeroShotEstimator::PredictMs(
    const std::vector<const train::QueryRecord*>& records) {
  ZDB_CHECK(model_ != nullptr);
  return model_->PredictMs(records);
}

StatusOr<double> ZeroShotEstimator::EstimateQueryMs(
    const datagen::DatabaseEnv& env, const plan::QuerySpec& query,
    const optimizer::PlannerOptions& planner_options) {
  ZDB_CHECK(model_ != nullptr);
  if (model_->cardinality_mode() != featurize::CardinalityMode::kEstimated) {
    return Status::InvalidArgument(
        "EstimateQueryMs requires an estimated-cardinality model (exact "
        "cardinalities only exist after execution)");
  }
  optimizer::Planner planner(env.db.get(), &env.stats, optimizer::CostParams(),
                             planner_options);
  ZDB_ASSIGN_OR_RETURN(plan::PhysicalPlan plan, planner.Plan(query));
  train::QueryRecord record;
  record.env = &env;
  record.db_name = env.db->name();
  record.query = query;
  record.plan = std::move(plan);
  record.opt_cost = record.plan.root->est_cost;
  std::vector<const train::QueryRecord*> view = {&record};
  return model_->PredictMs(view)[0];
}

}  // namespace zerodb::zeroshot
