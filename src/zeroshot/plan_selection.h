#ifndef ZERODB_ZEROSHOT_PLAN_SELECTION_H_
#define ZERODB_ZEROSHOT_PLAN_SELECTION_H_

#include <vector>

#include "common/status.h"
#include "datagen/corpus.h"
#include "plan/physical.h"
#include "plan/query.h"
#include "zeroshot/estimator.h"

namespace zerodb::zeroshot {

/// The paper's Section 4.2 "initial naive approach" to zero-shot query
/// optimization: use the zero-shot cost model to evaluate candidate plans
/// and steer the optimizer — in the spirit of Bao's hint sets. Candidates
/// come from planning the query under different planner configurations
/// (index scans on/off, index-nested-loop joins on/off, nested-loop
/// thresholds), deduplicated structurally.
std::vector<plan::PhysicalPlan> EnumerateCandidatePlans(
    const datagen::DatabaseEnv& env, const plan::QuerySpec& query);

struct PlanChoice {
  plan::PhysicalPlan plan;
  Millis predicted_ms;
  size_t candidate_index = 0;   ///< into EnumerateCandidatePlans order
  size_t num_candidates = 0;
};

/// Picks the candidate plan with the lowest zero-shot predicted runtime.
/// Requires an estimated-cardinality model (nothing is executed).
StatusOr<PlanChoice> ChoosePlanWithModel(ZeroShotEstimator* estimator,
                                         const datagen::DatabaseEnv& env,
                                         const plan::QuerySpec& query);

}  // namespace zerodb::zeroshot

#endif  // ZERODB_ZEROSHOT_PLAN_SELECTION_H_
