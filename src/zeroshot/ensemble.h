#ifndef ZERODB_ZEROSHOT_ENSEMBLE_H_
#define ZERODB_ZEROSHOT_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "models/scaled_cost_model.h"
#include "zeroshot/estimator.h"

namespace zerodb::zeroshot {

/// A prediction with an uncertainty estimate (paper Section 2.2, "Training
/// Data and Uncertainty"): the ensemble's geometric-mean runtime plus a
/// multiplicative spread factor. `uncertain` flags predictions whose spread
/// exceeds the configured threshold — callers can fall back to traditional
/// heuristics for those, exactly as the paper proposes.
struct UncertainPrediction {
  Millis runtime_ms;            ///< geometric mean across the ensemble
  double spread_factor = 1.0;   ///< exp(stddev of log predictions), >= 1
  Millis low_ms;                ///< runtime_ms / spread_factor
  Millis high_ms;               ///< runtime_ms * spread_factor
  bool uncertain = false;
};

struct EnsembleConfig {
  size_t ensemble_size = 5;
  /// Predictions with spread_factor above this are flagged uncertain.
  double uncertainty_threshold = 2.0;
  ZeroShotConfig base;  ///< per-member training config (seeds are varied)
};

/// Deep ensemble of zero-shot cost models: K members trained on the same
/// records with different initialization and shuffling seeds. Disagreement
/// between members approximates epistemic uncertainty — large on plan
/// shapes and feature regions the training corpus never covered.
class EnsembleEstimator {
 public:
  /// Trains all members from shared records (collected once).
  static EnsembleEstimator TrainFromRecords(
      std::vector<train::QueryRecord> records, const EnsembleConfig& config);

  /// Convenience: collect + train on a corpus.
  static EnsembleEstimator Train(
      const std::vector<datagen::DatabaseEnv>& corpus,
      const EnsembleConfig& config);

  /// Mean predictions with uncertainty, one per record.
  std::vector<UncertainPrediction> Predict(
      const std::vector<const train::QueryRecord*>& records);

  /// Predictions where uncertain queries fall back to the given predictor
  /// (e.g. a ScaledOptCostModel standing in for the classical optimizer
  /// cost model). Returns the values and how many fell back.
  std::vector<Millis> PredictWithFallback(
      const std::vector<const train::QueryRecord*>& records,
      models::CostPredictor* fallback, size_t* num_fallbacks = nullptr);

  size_t size() const { return members_.size(); }
  const EnsembleConfig& config() const { return config_; }
  /// Per-member training outcomes (loss curves etc.), parallel to members.
  const std::vector<train::TrainResult>& train_results() const {
    return train_results_;
  }

 private:
  EnsembleEstimator() = default;

  EnsembleConfig config_;
  std::vector<train::QueryRecord> records_;
  std::vector<std::unique_ptr<models::ZeroShotCostModel>> members_;
  std::vector<train::TrainResult> train_results_;
};

}  // namespace zerodb::zeroshot

#endif  // ZERODB_ZEROSHOT_ENSEMBLE_H_
