#include "zeroshot/ensemble.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "train/trainer.h"

namespace zerodb::zeroshot {

EnsembleEstimator EnsembleEstimator::TrainFromRecords(
    std::vector<train::QueryRecord> records, const EnsembleConfig& config) {
  ZDB_CHECK(!records.empty());
  ZDB_CHECK_GT(config.ensemble_size, 0u);
  EnsembleEstimator ensemble;
  ensemble.config_ = config;
  ensemble.records_ = std::move(records);
  auto view = train::MakeView(ensemble.records_);
  for (size_t member = 0; member < config.ensemble_size; ++member) {
    models::ZeroShotCostModel::Options model_options = config.base.model;
    model_options.init_seed = config.base.model.init_seed + 1000 * (member + 1);
    auto model = std::make_unique<models::ZeroShotCostModel>(model_options);
    train::TrainerOptions trainer = config.base.trainer;
    trainer.seed = config.base.trainer.seed + 77 * (member + 1);
    ensemble.train_results_.push_back(
        train::TrainModel(model.get(), view, trainer));
    ensemble.members_.push_back(std::move(model));
  }
  return ensemble;
}

EnsembleEstimator EnsembleEstimator::Train(
    const std::vector<datagen::DatabaseEnv>& corpus,
    const EnsembleConfig& config) {
  return TrainFromRecords(CollectCorpusRecords(corpus, config.base), config);
}

std::vector<UncertainPrediction> EnsembleEstimator::Predict(
    const std::vector<const train::QueryRecord*>& records) {
  ZDB_CHECK(!members_.empty());
  // Member predictions in log space.
  std::vector<std::vector<double>> member_logs;
  member_logs.reserve(members_.size());
  for (const auto& member : members_) {
    std::vector<Millis> predictions = member->PredictMs(records);
    std::vector<double> logs;
    logs.reserve(predictions.size());
    // Ensemble statistics use a tighter clamp (1e-9) than Millis::ToLog's
    // model-readout clamp (1e-6), kept for bit-identical spread factors.
    for (Millis p : predictions) {
      logs.push_back(std::log(std::max(p.value(), 1e-9)));
    }
    member_logs.push_back(std::move(logs));
  }

  std::vector<UncertainPrediction> out;
  out.reserve(records.size());
  for (size_t q = 0; q < records.size(); ++q) {
    std::vector<double> logs;
    logs.reserve(members_.size());
    for (const auto& member : member_logs) logs.push_back(member[q]);
    UncertainPrediction prediction;
    double mean_log = Mean(logs);
    double std_log = StdDev(logs);
    prediction.runtime_ms = Millis::FromLog(LogMillis(mean_log));
    prediction.spread_factor = std::exp(std_log);
    prediction.low_ms = Millis::FromLog(LogMillis(mean_log - std_log));
    prediction.high_ms = Millis::FromLog(LogMillis(mean_log + std_log));
    prediction.uncertain =
        prediction.spread_factor > config_.uncertainty_threshold;
    out.push_back(prediction);
  }
  return out;
}

std::vector<Millis> EnsembleEstimator::PredictWithFallback(
    const std::vector<const train::QueryRecord*>& records,
    models::CostPredictor* fallback, size_t* num_fallbacks) {
  ZDB_CHECK(fallback != nullptr);
  std::vector<UncertainPrediction> predictions = Predict(records);
  std::vector<Millis> fallback_values = fallback->PredictMs(records);
  ZDB_CHECK_EQ(fallback_values.size(), predictions.size());
  std::vector<Millis> out;
  out.reserve(predictions.size());
  size_t fallbacks = 0;
  for (size_t q = 0; q < predictions.size(); ++q) {
    if (predictions[q].uncertain) {
      out.push_back(fallback_values[q]);
      ++fallbacks;
    } else {
      out.push_back(predictions[q].runtime_ms);
    }
  }
  if (num_fallbacks != nullptr) *num_fallbacks = fallbacks;
  return out;
}

}  // namespace zerodb::zeroshot
