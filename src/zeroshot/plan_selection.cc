#include "zeroshot/plan_selection.h"

#include <algorithm>
#include <limits>
#include <string>

#include "common/check.h"
#include "optimizer/optimizer.h"

namespace zerodb::zeroshot {

std::vector<plan::PhysicalPlan> EnumerateCandidatePlans(
    const datagen::DatabaseEnv& env, const plan::QuerySpec& query) {
  // Hint sets, Bao-style: each knob combination may steer the planner to a
  // structurally different plan.
  std::vector<optimizer::PlannerOptions> hint_sets;
  {
    optimizer::PlannerOptions defaults;
    hint_sets.push_back(defaults);

    optimizer::PlannerOptions no_index;
    no_index.enable_index_scan = false;
    no_index.enable_index_nl_join = false;
    hint_sets.push_back(no_index);

    optimizer::PlannerOptions no_inlj;
    no_inlj.enable_index_nl_join = false;
    hint_sets.push_back(no_inlj);

    optimizer::PlannerOptions no_index_scan;
    no_index_scan.enable_index_scan = false;
    hint_sets.push_back(no_index_scan);

    optimizer::PlannerOptions eager_nlj;
    eager_nlj.nlj_row_threshold = 2048.0;
    hint_sets.push_back(eager_nlj);
  }

  std::vector<plan::PhysicalPlan> candidates;
  std::vector<std::string> shapes;
  for (const optimizer::PlannerOptions& options : hint_sets) {
    optimizer::Planner planner(env.db.get(), &env.stats,
                               optimizer::CostParams(), options);
    auto plan = planner.Plan(query);
    if (!plan.ok()) continue;
    std::string shape = plan->root->ToString(*env.db);
    if (std::find(shapes.begin(), shapes.end(), shape) != shapes.end()) {
      continue;  // structurally identical to an earlier candidate
    }
    shapes.push_back(std::move(shape));
    candidates.push_back(std::move(*plan));
  }
  return candidates;
}

StatusOr<PlanChoice> ChoosePlanWithModel(ZeroShotEstimator* estimator,
                                         const datagen::DatabaseEnv& env,
                                         const plan::QuerySpec& query) {
  ZDB_CHECK(estimator != nullptr);
  if (estimator->model().cardinality_mode() !=
      featurize::CardinalityMode::kEstimated) {
    return Status::InvalidArgument(
        "plan selection requires an estimated-cardinality model");
  }
  std::vector<plan::PhysicalPlan> candidates =
      EnumerateCandidatePlans(env, query);
  if (candidates.empty()) {
    return Status::InvalidArgument("query produced no candidate plans");
  }

  // Score all candidates through the estimator's serving path: one
  // fingerprint-cache sweep plus a single ForwardBatch over the misses.
  std::vector<train::QueryRecord> records;
  records.reserve(candidates.size());
  for (plan::PhysicalPlan& candidate : candidates) {
    train::QueryRecord record;
    record.env = &env;
    record.db_name = env.db->name();
    record.query = query;
    record.opt_cost = candidate.root->est_cost;
    record.plan = std::move(candidate);
    records.push_back(std::move(record));
  }
  std::vector<Millis> predicted =
      estimator->PredictMs(train::MakeView(records));

  size_t best = 0;
  for (size_t c = 1; c < predicted.size(); ++c) {
    if (predicted[c] < predicted[best]) best = c;
  }
  PlanChoice choice;
  choice.plan = std::move(records[best].plan);
  choice.predicted_ms = predicted[best];
  choice.candidate_index = best;
  choice.num_candidates = records.size();
  return choice;
}

}  // namespace zerodb::zeroshot
