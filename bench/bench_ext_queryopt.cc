// Extension experiment (paper Section 4.2): zero-shot query optimization,
// the "initial naive approach" — use the zero-shot cost model to pick among
// candidate plans (Bao-style hint sets). Compares, over a workload on the
// unseen IMDB database, the total TRUE runtime of:
//   (a) the classical optimizer's plan choice,
//   (b) the plan the zero-shot model picks,
//   (c) the best candidate in hindsight (oracle).

#include "bench_common.h"
#include "zeroshot/plan_selection.h"

namespace zerodb::bench {
namespace {

int Run(const BenchOptions& options) {
  ExperimentContext context =
      BuildContext(/*need_exact_model=*/false, /*need_baseline_pool=*/false);
  datagen::DatabaseEnv& imdb = context.imdb;

  // Secondary indexes make plan choice interesting (index vs hash plans).
  Rng index_rng(99);
  datagen::AddDefaultIndexes(imdb.db.get(), &index_rng,
                             /*secondary_index_prob=*/0.5);
  imdb.RefreshStats();

  exec::Executor executor(imdb.db.get());
  runtime::RuntimeSimulator simulator;
  workload::QueryGenerator generator(&imdb,
                                     workload::TrainingWorkloadConfig(), 31337);

  double optimizer_total = 0.0;
  double model_total = 0.0;
  double oracle_total = 0.0;
  size_t queries = 0;
  size_t model_beats_optimizer = 0;
  size_t optimizer_beats_model = 0;
  const size_t target = std::max<size_t>(context.scale.eval_queries / 2, 50);

  while (queries < target) {
    plan::QuerySpec query = generator.Next();
    auto candidates = zeroshot::EnumerateCandidatePlans(imdb, query);
    if (candidates.size() < 2) continue;  // no real choice to make

    // True runtime of each candidate.
    std::vector<double> true_ms;
    bool all_ok = true;
    for (plan::PhysicalPlan& candidate : candidates) {
      auto result = executor.Execute(&candidate);
      if (!result.ok()) {
        all_ok = false;
        break;
      }
      true_ms.push_back(simulator.PlanMs(candidate, *result));
    }
    if (!all_ok) continue;

    // (a) classical optimizer: candidate with the lowest estimated cost.
    size_t optimizer_pick = 0;
    for (size_t c = 1; c < candidates.size(); ++c) {
      if (candidates[c].root->est_cost <
          candidates[optimizer_pick].root->est_cost) {
        optimizer_pick = c;
      }
    }
    // (b) zero-shot model pick.
    auto choice = zeroshot::ChoosePlanWithModel(
        context.zero_shot_estimated.get(), imdb, query);
    if (!choice.ok()) continue;
    size_t model_pick = choice->candidate_index;
    // (c) oracle.
    size_t oracle_pick = 0;
    for (size_t c = 1; c < true_ms.size(); ++c) {
      if (true_ms[c] < true_ms[oracle_pick]) oracle_pick = c;
    }

    optimizer_total += true_ms[optimizer_pick];
    model_total += true_ms[model_pick];
    oracle_total += true_ms[oracle_pick];
    if (true_ms[model_pick] < true_ms[optimizer_pick] - 1e-9) {
      ++model_beats_optimizer;
    } else if (true_ms[optimizer_pick] < true_ms[model_pick] - 1e-9) {
      ++optimizer_beats_model;
    }
    ++queries;
  }

  std::printf("Zero-shot query optimization (Section 4.2 naive approach) on "
              "unseen IMDB\n%zu queries with >= 2 structurally distinct "
              "candidate plans, scale=%s\n\n",
              queries, context.scale.name);
  std::printf("%-42s %14s %10s\n", "plan chooser", "total runtime",
              "vs oracle");
  PrintRule(70);
  std::printf("%-42s %11.1f ms %9.3fx\n",
              "classical optimizer (analytical cost)", optimizer_total,
              optimizer_total / oracle_total);
  std::printf("%-42s %11.1f ms %9.3fx\n",
              "zero-shot model (never saw this DB)", model_total,
              model_total / oracle_total);
  std::printf("%-42s %11.1f ms %9.3fx\n", "oracle (best candidate)",
              oracle_total, 1.0);
  PrintRule(70);
  std::printf("model picked strictly better plan: %zu queries; optimizer "
              "strictly better: %zu; ties: %zu\n",
              model_beats_optimizer, optimizer_beats_model,
              queries - model_beats_optimizer - optimizer_beats_model);

  return MaybeWriteBenchMetrics(
      options, "bench_ext_queryopt", context.scale.name, imdb,
      {{"zero_shot_estimated", &context.zero_shot_estimated->train_result()}},
      context.zero_shot_estimated.get());
}

}  // namespace
}  // namespace zerodb::bench

int main(int argc, char** argv) {
  return zerodb::bench::Run(zerodb::bench::ParseBenchArgs(argc, argv));
}
