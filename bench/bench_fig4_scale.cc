// Reproduces the "scale" panel of Figure 4: cost-estimation accuracy of
// zero-shot vs workload-driven models on the scale benchmark (join-count
// sweep) over the unseen IMDB-like database.

#include "fig4_common.h"

int main(int argc, char** argv) {
  return zerodb::bench::RunFigure4(zerodb::workload::BenchmarkWorkload::kScale,
                                   zerodb::bench::ParseBenchArgs(argc, argv));
}
