// Reproduces the "synthetic" panel of Figure 4: cost-estimation accuracy of
// zero-shot vs workload-driven models on the synthetic benchmark (random
// SPJA queries) over the unseen IMDB-like database.

#include "fig4_common.h"

int main(int argc, char** argv) {
  return zerodb::bench::RunFigure4(
      zerodb::workload::BenchmarkWorkload::kSynthetic,
      zerodb::bench::ParseBenchArgs(argc, argv));
}
