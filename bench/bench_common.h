#ifndef ZERODB_BENCH_BENCH_COMMON_H_
#define ZERODB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "datagen/corpus.h"
#include "exec/executor.h"
#include "models/e2e_model.h"
#include "models/mscn_model.h"
#include "models/scaled_cost_model.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/prom.h"
#include "obs/trace.h"
#include "obs/trace_event.h"
#include "optimizer/optimizer.h"
#include "train/dataset.h"
#include "train/metrics.h"
#include "train/trainer.h"
#include "workload/benchmarks.h"
#include "workload/generator.h"
#include "zeroshot/estimator.h"

namespace zerodb::bench {

/// Command-line options shared by every bench_* binary.
struct BenchOptions {
  /// When non-empty, the bench writes one JSON metrics artifact here on
  /// exit: global registry counters/histograms, a per-operator span tree of
  /// a sample query, and per-epoch loss curves of any model trained.
  std::string metrics_out;
  /// When non-empty, the bench records a cross-thread timeline (global
  /// TraceEventRecorder) and writes Chrome trace-event JSON here on exit —
  /// loadable in chrome://tracing or ui.perfetto.dev.
  std::string trace_out;
  /// When non-empty, the bench writes the global registry in Prometheus text
  /// exposition format here on exit.
  std::string prom_out;
  /// Global-pool size (--threads=N). 0 keeps the default (ZERODB_THREADS
  /// env, else hardware_concurrency).
  size_t threads = 0;
  /// Serving knobs, forwarded into ZeroShotConfig by benches that build an
  /// estimator. --batch_size=N chunks each batched forward pass into N-plan
  /// slices (0 = one pass over all cache misses); --cache_capacity=N sizes
  /// the plan-fingerprint prediction cache (0 disables caching entirely).
  size_t batch_size = 0;
  size_t cache_capacity = 4096;
};

/// Parses one --threads value and installs it as the global-pool size.
/// Must run before the first ThreadPool::Global() use, i.e. before any
/// corpus/collection/training work.
inline size_t ApplyThreadsFlag(const std::string& value) {
  size_t threads =
      static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
  if (threads == 0) {
    std::fprintf(stderr, "invalid --threads value: %s\n", value.c_str());
    std::exit(2);
  }
  ThreadPool::SetGlobalThreads(threads);
  return threads;
}

/// Parses bench flags (--metrics_out=<path>, --trace_out=<path>,
/// --prom_out=<path>, --threads=<N>), exiting with usage on unknown
/// arguments. Requesting a metrics or Prometheus artifact enables the global
/// MetricsRegistry; requesting a trace installs + enables the global
/// TraceEventRecorder, so the instrumented layers start recording.
inline BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions options;
  const std::string prefix = "--metrics_out=";
  const std::string trace_prefix = "--trace_out=";
  const std::string prom_prefix = "--prom_out=";
  const std::string threads_prefix = "--threads=";
  const std::string batch_prefix = "--batch_size=";
  const std::string cache_prefix = "--cache_capacity=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      options.metrics_out = arg.substr(prefix.size());
    } else if (arg == "--metrics_out" && i + 1 < argc) {
      options.metrics_out = argv[++i];
    } else if (arg.rfind(trace_prefix, 0) == 0) {
      options.trace_out = arg.substr(trace_prefix.size());
    } else if (arg == "--trace_out" && i + 1 < argc) {
      options.trace_out = argv[++i];
    } else if (arg.rfind(prom_prefix, 0) == 0) {
      options.prom_out = arg.substr(prom_prefix.size());
    } else if (arg == "--prom_out" && i + 1 < argc) {
      options.prom_out = argv[++i];
    } else if (arg.rfind(threads_prefix, 0) == 0) {
      options.threads = ApplyThreadsFlag(arg.substr(threads_prefix.size()));
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = ApplyThreadsFlag(argv[++i]);
    } else if (arg.rfind(batch_prefix, 0) == 0) {
      options.batch_size = static_cast<size_t>(
          std::strtoul(arg.substr(batch_prefix.size()).c_str(), nullptr, 10));
    } else if (arg == "--batch_size" && i + 1 < argc) {
      options.batch_size =
          static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind(cache_prefix, 0) == 0) {
      options.cache_capacity = static_cast<size_t>(
          std::strtoul(arg.substr(cache_prefix.size()).c_str(), nullptr, 10));
    } else if (arg == "--cache_capacity" && i + 1 < argc) {
      options.cache_capacity =
          static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\nusage: %s [--metrics_out=<path>] "
                   "[--trace_out=<path>] [--prom_out=<path>] [--threads=<N>] "
                   "[--batch_size=<N>] [--cache_capacity=<N>]\n",
                   arg.c_str(), argv[0]);
      std::exit(2);
    }
  }
  if (!options.metrics_out.empty() || !options.prom_out.empty()) {
    obs::MetricsRegistry::Global().set_enabled(true);
  }
  if (!options.trace_out.empty()) {
    obs::TraceEventRecorder::InstallGlobal();
  }
  return options;
}

/// Plans + executes one generated query on `env` under a QueryTracer and
/// returns the resulting span tree (one span per physical operator).
inline StatusOr<obs::Span> TraceSampleQuery(const datagen::DatabaseEnv& env,
                                            uint64_t seed = 20220101) {
  workload::QueryGenerator generator(&env, workload::TrainingWorkloadConfig(),
                                     seed);
  optimizer::Planner planner(env.db.get(), &env.stats);
  for (int attempt = 0; attempt < 64; ++attempt) {
    plan::QuerySpec query = generator.Next();
    auto plan = planner.Plan(query);
    if (!plan.ok()) continue;
    obs::QueryTracer tracer;
    exec::ExecutorOptions exec_options;
    exec_options.tracer = &tracer;
    exec::Executor executor(env.db.get(), exec_options);
    auto result = executor.Execute(&*plan);
    if (!result.ok() || tracer.roots().empty()) continue;
    return tracer.roots().front();
  }
  return Status::Internal("no executable sample query found on " +
                          env.db->name());
}

/// One named training run to embed in the artifact (pointer may be null).
using NamedTrainResult = std::pair<std::string, const train::TrainResult*>;

/// Writes the bench's observability artifacts: the JSON metrics artifact
/// (--metrics_out: registry dump + sample-query trace on `env` + training
/// loss curves + the estimator's quality section), the Prometheus text
/// exposition (--prom_out) and the cross-thread timeline (--trace_out).
/// Each flag is handled independently. Returns the process exit code (0, or
/// 1 when any write failed), so mains can `return MaybeWriteBenchMetrics(...)`.
inline int MaybeWriteBenchMetrics(
    const BenchOptions& options, const std::string& bench_name,
    const char* scale_name, const datagen::DatabaseEnv& env,
    const std::vector<NamedTrainResult>& training_runs = {},
    const zeroshot::ZeroShotEstimator* estimator = nullptr) {
  int exit_code = 0;
  if (!options.metrics_out.empty()) {
    obs::MetricsArtifact artifact(bench_name);
    artifact.AddLabel("scale", scale_name);
    artifact.SetRegistry(&obs::MetricsRegistry::Global());
    if (estimator != nullptr) {
      artifact.SetQualityMonitor(estimator->quality_monitor());
    }
    StatusOr<obs::Span> trace = TraceSampleQuery(env);
    if (trace.ok()) {
      // The sample query's operator tree also lands on the timeline (if one
      // is being recorded) as its own named track.
      if (obs::TraceEventRecorder* recorder = obs::TraceEventRecorder::Global();
          recorder != nullptr) {
        obs::ProjectSpanTree(recorder, *trace,
                             "sample_query:" + env.db->name());
      }
      artifact.AddTrace("sample_query:" + env.db->name(), std::move(*trace));
    } else {
      std::fprintf(stderr, "[metrics] sample trace failed: %s\n",
                   trace.status().ToString().c_str());
    }
    for (const auto& [name, result] : training_runs) {
      if (result != nullptr) artifact.AddTrainingRun(name, result->history);
    }
    Status status = artifact.WriteTo(options.metrics_out);
    if (status.ok()) {
      std::fprintf(stderr, "[metrics] wrote %s\n", options.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "[metrics] write failed: %s\n",
                   status.ToString().c_str());
      exit_code = 1;
    }
  }
  if (!options.prom_out.empty()) {
    Status status =
        obs::WritePrometheusTo(obs::MetricsRegistry::Global(), options.prom_out);
    if (status.ok()) {
      std::fprintf(stderr, "[metrics] wrote %s\n", options.prom_out.c_str());
    } else {
      std::fprintf(stderr, "[metrics] prometheus write failed: %s\n",
                   status.ToString().c_str());
      exit_code = 1;
    }
  }
  if (!options.trace_out.empty()) {
    obs::TraceEventRecorder* recorder = obs::TraceEventRecorder::Global();
    if (recorder != nullptr) {
      Status status = recorder->WriteTo(options.trace_out);
      if (status.ok()) {
        std::fprintf(stderr, "[metrics] wrote %s\n", options.trace_out.c_str());
      } else {
        std::fprintf(stderr, "[metrics] trace write failed: %s\n",
                     status.ToString().c_str());
        exit_code = 1;
      }
    }
  }
  return exit_code;
}

/// Experiment scale, selected by the ZERODB_SCALE environment variable
/// ("small" default, "full"). The paper used 19 databases x 5,000 queries
/// and workload-driven training sets up to 50,000; "small" shrinks
/// everything to single-core-friendly sizes while preserving the sweep
/// structure, "full" approaches the paper's sizes.
struct ScaleConfig {
  double corpus_scale = 0.12;   ///< row-count multiplier for the 19 DBs
  double imdb_scale = 0.12;
  size_t num_training_dbs = 19;
  size_t queries_per_database = 200;   ///< zero-shot corpus workload
  std::vector<size_t> baseline_training_sizes = {100, 250, 500, 1000, 2000};
  size_t eval_queries = 200;           ///< per evaluation benchmark
  size_t max_epochs = 25;
  size_t hidden_dim = 64;
  const char* name = "small";
};

inline ScaleConfig GetScaleConfig() {
  ScaleConfig config;
  const char* scale = std::getenv("ZERODB_SCALE");
  if (scale != nullptr && std::strcmp(scale, "full") == 0) {
    config.corpus_scale = 0.5;
    config.imdb_scale = 0.5;
    config.queries_per_database = 1000;
    config.baseline_training_sizes = {100, 500, 1000, 2500, 5000, 10000};
    config.eval_queries = 500;
    config.max_epochs = 60;
    config.name = "full";
  }
  return config;
}

/// Everything the Figure-4 / Table-1 experiments share: the 19-database
/// training corpus, the held-out IMDB-like database, the two zero-shot
/// models (estimated / exact cardinalities), and an IMDB training pool for
/// the workload-driven baselines.
struct ExperimentContext {
  ScaleConfig scale;
  std::vector<datagen::DatabaseEnv> corpus;
  datagen::DatabaseEnv imdb;
  std::unique_ptr<zeroshot::ZeroShotEstimator> zero_shot_estimated;
  std::unique_ptr<zeroshot::ZeroShotEstimator> zero_shot_exact;
  std::vector<train::QueryRecord> imdb_training_pool;  ///< for baselines
};

inline zeroshot::ZeroShotConfig MakeZeroShotConfig(
    const ScaleConfig& scale, featurize::CardinalityMode mode,
    const BenchOptions* options = nullptr) {
  zeroshot::ZeroShotConfig config;
  config.queries_per_database = scale.queries_per_database;
  config.trainer.max_epochs = scale.max_epochs;
  config.model.hidden_dim = scale.hidden_dim;
  config.model.cardinality_mode = mode;
  if (options != nullptr) {
    config.serve_batch_size = options->batch_size;
    config.cache.capacity = options->cache_capacity;
  }
  return config;
}

/// Builds the full context. `need_exact_model` / `need_baseline_pool` skip
/// work a particular bench does not use; `options` (when given) forwards
/// the --batch_size / --cache_capacity serving knobs into both estimators.
inline ExperimentContext BuildContext(bool need_exact_model = true,
                                      bool need_baseline_pool = true,
                                      const BenchOptions* options = nullptr) {
  SetLogLevel(LogLevel::kWarning);  // keep bench stdout clean
  ExperimentContext context;
  context.scale = GetScaleConfig();
  std::fprintf(stderr, "[setup] scale=%s: building corpus (%zu dbs)...\n",
               context.scale.name, context.scale.num_training_dbs);
  context.corpus = datagen::MakeTrainingCorpus(
      42, context.scale.num_training_dbs, context.scale.corpus_scale);
  context.imdb = datagen::MakeImdbEnv(7, context.scale.imdb_scale);

  std::fprintf(stderr, "[setup] collecting corpus workloads + training "
                       "zero-shot (estimated card.)...\n");
  auto est_config = MakeZeroShotConfig(
      context.scale, featurize::CardinalityMode::kEstimated, options);
  std::vector<train::QueryRecord> corpus_records =
      zeroshot::CollectCorpusRecords(context.corpus, est_config);
  context.zero_shot_estimated = std::make_unique<zeroshot::ZeroShotEstimator>(
      zeroshot::ZeroShotEstimator::TrainFromRecords(std::move(corpus_records),
                                                    est_config));
  if (need_exact_model) {
    std::fprintf(stderr, "[setup] training zero-shot (exact card.)...\n");
    auto exact_config = MakeZeroShotConfig(
        context.scale, featurize::CardinalityMode::kExact, options);
    // Reuse the already-collected (and executed) records of the first model.
    std::vector<train::QueryRecord> copies;
    for (const train::QueryRecord& record :
         context.zero_shot_estimated->training_records()) {
      train::QueryRecord copy;
      copy.env = record.env;
      copy.db_name = record.db_name;
      copy.query = record.query;
      copy.plan = record.plan.Clone();
      copy.runtime_ms = record.runtime_ms;
      copy.opt_cost = record.opt_cost;
      copies.push_back(std::move(copy));
    }
    context.zero_shot_exact = std::make_unique<zeroshot::ZeroShotEstimator>(
        zeroshot::ZeroShotEstimator::TrainFromRecords(std::move(copies),
                                                      exact_config));
  }
  if (need_baseline_pool) {
    std::fprintf(stderr, "[setup] collecting IMDB training pool for "
                         "workload-driven baselines...\n");
    size_t pool_size = context.scale.baseline_training_sizes.back();
    context.imdb_training_pool = train::CollectRandomWorkload(
        context.imdb, workload::TrainingWorkloadConfig(), pool_size, 4242,
        train::CollectOptions());
  }
  return context;
}

/// Collects an executed evaluation workload on the unseen IMDB database.
inline std::vector<train::QueryRecord> CollectEvalWorkload(
    const ExperimentContext& context, workload::BenchmarkWorkload workload) {
  auto queries = workload::MakeBenchmark(workload, context.imdb,
                                         context.scale.eval_queries, 1337);
  return train::CollectRecords(context.imdb, queries, train::CollectOptions());
}

inline std::vector<double> TruthOf(const std::vector<train::QueryRecord>& records) {
  std::vector<double> truth;
  truth.reserve(records.size());
  for (const auto& record : records) truth.push_back(record.runtime_ms);
  return truth;
}

/// Trains an E2E / MSCN baseline on the first `n` pool records.
inline train::QErrorStats EvalNeuralBaseline(
    models::NeuralCostModel* model,
    const std::vector<train::QueryRecord>& pool, size_t n,
    const std::vector<train::QueryRecord>& eval, size_t max_epochs) {
  std::vector<const train::QueryRecord*> training;
  for (size_t i = 0; i < std::min(n, pool.size()); ++i) {
    training.push_back(&pool[i]);
  }
  train::TrainerOptions trainer;
  trainer.max_epochs = max_epochs;
  train::TrainModel(model, training, trainer);
  auto predictions = model->PredictMs(train::MakeView(eval));
  return train::ComputeQErrors(predictions, TruthOf(eval));
}

inline void PrintRule(size_t width) {
  for (size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace zerodb::bench

#endif  // ZERODB_BENCH_BENCH_COMMON_H_
