// Extension experiment (paper Section 2.2, "Training Data and Uncertainty"):
// ensemble-based uncertainty estimates. Sweeping the uncertainty threshold
// trades coverage (fraction of queries the zero-shot model answers itself)
// against accuracy on the retained queries; flagged queries fall back to the
// scaled-optimizer-cost heuristic, as the paper proposes.

#include "bench_common.h"
#include "zeroshot/ensemble.h"

namespace zerodb::bench {
namespace {

int Run(const BenchOptions& options) {
  SetLogLevel(LogLevel::kWarning);
  ScaleConfig scale = GetScaleConfig();
  std::fprintf(stderr, "[setup] corpus and ensemble (3 members)...\n");
  auto corpus = datagen::MakeTrainingCorpus(42, scale.num_training_dbs,
                                            scale.corpus_scale);
  auto imdb = datagen::MakeImdbEnv(7, scale.imdb_scale);

  zeroshot::EnsembleConfig config;
  config.ensemble_size = 3;
  config.base = MakeZeroShotConfig(scale, featurize::CardinalityMode::kEstimated);
  auto ensemble = zeroshot::EnsembleEstimator::Train(corpus, config);

  std::fprintf(stderr, "[setup] evaluation workload + fallback model...\n");
  auto queries = workload::MakeBenchmark(
      workload::BenchmarkWorkload::kSynthetic, imdb, scale.eval_queries, 1337);
  auto eval = train::CollectRecords(imdb, queries, train::CollectOptions());
  auto eval_view = train::MakeView(eval);
  std::vector<double> truth = TruthOf(eval);

  // Fallback heuristic fit on a small IMDB sample (like calibrating the
  // optimizer's cost units, much cheaper than training a model).
  auto fallback_pool = train::CollectRandomWorkload(
      imdb, workload::TrainingWorkloadConfig(), 100, 777,
      train::CollectOptions());
  models::ScaledOptCostModel fallback;
  fallback.Fit(train::MakeView(fallback_pool));

  auto predictions = ensemble.Predict(eval_view);

  std::printf("Ablation: ensemble uncertainty — coverage vs accuracy on "
              "unseen IMDB\n(%zu eval queries, %zu-member ensemble, "
              "scale=%s)\n\n",
              eval.size(), ensemble.size(), scale.name);
  std::printf("%10s %10s %16s %16s %14s\n", "threshold", "coverage",
              "retained median", "retained p95", "combined p95");
  PrintRule(72);

  for (double threshold : {1.03, 1.05, 1.08, 1.12, 1.2, 1e9}) {
    std::vector<double> retained_pred;
    std::vector<double> retained_truth;
    std::vector<double> combined_pred;
    auto fallback_values = fallback.PredictMs(eval_view);
    for (size_t q = 0; q < predictions.size(); ++q) {
      if (predictions[q].spread_factor <= threshold) {
        retained_pred.push_back(predictions[q].runtime_ms.value());
        retained_truth.push_back(truth[q]);
        combined_pred.push_back(predictions[q].runtime_ms.value());
      } else {
        combined_pred.push_back(fallback_values[q].value());
      }
    }
    double coverage =
        static_cast<double>(retained_pred.size()) / predictions.size();
    train::QErrorStats retained =
        train::ComputeQErrors(retained_pred, retained_truth);
    train::QErrorStats combined = train::ComputeQErrors(combined_pred, truth);
    std::string label = threshold > 1e6 ? "none" : FormatDouble(threshold, 2);
    std::printf("%10s %9.0f%% %16.2f %16.2f %14.2f\n", label.c_str(),
                100.0 * coverage, retained.median, retained.p95, combined.p95);
  }
  PrintRule(72);
  std::printf("Expectation: low thresholds keep only confident predictions "
              "(tighter retained\ntails); uncertain queries fall back to the "
              "classical heuristic.\n");

  std::vector<NamedTrainResult> training_runs;
  const auto& member_results = ensemble.train_results();
  for (size_t m = 0; m < member_results.size(); ++m) {
    training_runs.emplace_back("ensemble_member_" + std::to_string(m),
                               &member_results[m]);
  }
  return MaybeWriteBenchMetrics(options, "bench_ext_uncertainty", scale.name,
                                imdb, training_runs);
}

}  // namespace
}  // namespace zerodb::bench

int main(int argc, char** argv) {
  return zerodb::bench::Run(zerodb::bench::ParseBenchArgs(argc, argv));
}
