// Reproduces the "job-light" panel of Figure 4: cost-estimation accuracy of
// zero-shot vs workload-driven models on JOB-light-style star-join COUNT(*)
// queries over the unseen IMDB-like database.

#include "fig4_common.h"

int main(int argc, char** argv) {
  return zerodb::bench::RunFigure4(
      zerodb::workload::BenchmarkWorkload::kJobLight,
      zerodb::bench::ParseBenchArgs(argc, argv));
}
