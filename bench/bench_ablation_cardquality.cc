// Ablation B (paper Section 2.2, "Separation of Concerns"): the zero-shot
// model takes cardinalities from a separate data-driven estimator. How
// sensitive is it to the quality of that input? Evaluates the same trained
// model with exact cardinalities, the histogram estimates, and estimates
// corrupted with increasing multiplicative noise.

#include <cmath>

#include "bench_common.h"

namespace zerodb::bench {
namespace {

// Clones records, multiplying every node's estimated cardinality by
// lognormal noise of the given sigma (in natural-log space).
std::vector<train::QueryRecord> CorruptEstimates(
    const std::vector<train::QueryRecord>& records, double sigma,
    uint64_t seed) {
  Rng rng(seed);
  std::vector<train::QueryRecord> corrupted;
  corrupted.reserve(records.size());
  for (const train::QueryRecord& record : records) {
    train::QueryRecord copy;
    copy.env = record.env;
    copy.db_name = record.db_name;
    copy.query = record.query;
    copy.plan = record.plan.Clone();
    copy.runtime_ms = record.runtime_ms;
    copy.opt_cost = record.opt_cost;
    copy.plan.root->VisitMutable([&](plan::PhysicalNode& node) {
      node.est_cardinality =
          std::max(1.0, node.est_cardinality * rng.LogNormal(0.0, sigma));
    });
    corrupted.push_back(std::move(copy));
  }
  return corrupted;
}

int Run(const BenchOptions& options) {
  ExperimentContext context =
      BuildContext(/*need_exact_model=*/true, /*need_baseline_pool=*/false);
  std::fprintf(stderr, "[eval] synthetic workload...\n");
  std::vector<train::QueryRecord> eval =
      CollectEvalWorkload(context, workload::BenchmarkWorkload::kSynthetic);
  std::vector<double> truth = TruthOf(eval);

  std::printf("Ablation: sensitivity of the zero-shot model to cardinality "
              "input quality\n(synthetic benchmark on unseen IMDB, %zu eval "
              "queries, scale=%s)\n\n",
              eval.size(), context.scale.name);
  std::printf("%-34s %10s %10s %10s\n", "cardinality input", "median", "p95",
              "max");
  PrintRule(68);

  // Upper bound: exact cardinalities (its own model, as in Table 1).
  train::QErrorStats exact = train::ComputeQErrors(
      context.zero_shot_exact->PredictMs(train::MakeView(eval)), truth);
  std::printf("%-34s %10.2f %10.2f %10.2f\n", "exact (upper baseline)",
              exact.median, exact.p95, exact.max);

  // Deployable: histogram estimates.
  train::QErrorStats estimated = train::ComputeQErrors(
      context.zero_shot_estimated->PredictMs(train::MakeView(eval)), truth);
  std::printf("%-34s %10.2f %10.2f %10.2f\n", "histogram estimates",
              estimated.median, estimated.p95, estimated.max);

  // Corrupted estimates.
  for (double sigma : {0.5, 1.0, 2.0}) {
    auto corrupted = CorruptEstimates(eval, sigma, 555);
    train::QErrorStats stats = train::ComputeQErrors(
        context.zero_shot_estimated->PredictMs(train::MakeView(corrupted)),
        truth);
    std::printf("estimates x lognormal(sigma=%.1f)  %12.2f %10.2f %10.2f\n",
                sigma, stats.median, stats.p95, stats.max);
  }
  PrintRule(68);
  std::printf("Expectation: graceful degradation — accuracy decays smoothly "
              "with worse\ncardinalities instead of collapsing (separation "
              "of concerns pays off).\n");

  return MaybeWriteBenchMetrics(
      options, "bench_ablation_cardquality", context.scale.name, context.imdb,
      {{"zero_shot_estimated", &context.zero_shot_estimated->train_result()},
       {"zero_shot_exact", &context.zero_shot_exact->train_result()}},
      context.zero_shot_estimated.get());
}

}  // namespace
}  // namespace zerodb::bench

int main(int argc, char** argv) {
  return zerodb::bench::Run(zerodb::bench::ParseBenchArgs(argc, argv));
}
