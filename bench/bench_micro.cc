// Micro-benchmarks (google-benchmark) for the substrate components: data
// generation, statistics, planning, execution, featurization, model
// inference and one training step. These quantify the claim that zero-shot
// inference is cheap enough to sit inside a DBMS ("central brain").

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>

#include "bench_common.h"
#include "common/logging.h"
#include "datagen/corpus.h"
#include "nn/arena.h"
#include "nn/optimizer.h"
#include "featurize/zeroshot_featurizer.h"
#include "models/zeroshot_model.h"
#include "nn/ops.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "plan/fingerprint.h"
#include "stats/histogram.h"
#include "train/dataset.h"
#include "train/trainer.h"
#include "workload/benchmarks.h"
#include "zeroshot/predict_cache.h"

namespace zerodb {
namespace {

// Shared fixture state, built once.
struct MicroState {
  datagen::DatabaseEnv env = datagen::MakeImdbEnv(3, 0.1);
  std::vector<train::QueryRecord> records;
  std::unique_ptr<models::ZeroShotCostModel> model;
  train::TrainResult train_result;

  MicroState() {
    SetLogLevel(LogLevel::kWarning);
    records = train::CollectRandomWorkload(
        env, workload::TrainingWorkloadConfig(), 128, 9,
        train::CollectOptions());
    models::ZeroShotCostModel::Options options;
    options.hidden_dim = 64;
    model = std::make_unique<models::ZeroShotCostModel>(options);
    train::TrainerOptions trainer;
    trainer.max_epochs = 3;
    train_result =
        train::TrainModel(model.get(), train::MakeView(records), trainer);
  }
};

MicroState& State() {
  static MicroState* state = new MicroState();
  return *state;
}

// --cache_capacity knob, filled in by main() before benchmarks run. Sizes
// the PredictCache exercised by BM_PredictCacheLookup.
size_t g_cache_capacity = 4096;

// --batch_size knob: chunk size for BM_ZeroShotInferenceBatch, mirroring
// ZeroShotConfig::serve_batch_size (0 = price the whole record set in one
// forward pass). Lets a single binary measure the latency/throughput trade
// of bounded serving batches without rebuilding.
size_t g_serve_batch_size = 0;

// The corpus pipeline on 1 vs 4 threads. Generation fans out per database
// onto a local pool, so the serial/parallel pair shares nothing but the
// (bit-identical) output. Two measurement caveats, both visible in the
// committed baselines: on a single-core host threads:4 cannot beat
// threads:1 in real time (the ~34.8ms vs ~37.1ms near-tie is expected, not
// a parallelism bug — the small win is reduced main-thread bookkeeping),
// and google-benchmark's default cpu_time counts only the main thread, so
// pool-side work used to look ~5x cheaper than it was. MeasureProcessCPUTime
// makes cpu_time cover the whole process: comparable across thread counts,
// and roughly flat when the parallelization adds no overhead.
void BM_CorpusGeneration(benchmark::State& state) {
  SetLogLevel(LogLevel::kWarning);
  const size_t threads = static_cast<size_t>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  const size_t kDatabases = 8;
  for (auto _ : state) {
    auto corpus =
        datagen::MakeTrainingCorpus(42, kDatabases, /*scale=*/0.05, pool.get());
    benchmark::DoNotOptimize(corpus.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kDatabases));
}
BENCHMARK(BM_CorpusGeneration)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_HistogramBuild(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (double& v : values) v = rng.UniformDouble(0, 1e6);
  for (auto _ : state) {
    auto histogram = stats::EquiDepthHistogram::Build(values, 64);
    benchmark::DoNotOptimize(histogram);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HistogramBuild)->Arg(10000)->Arg(100000);

void BM_SeqScanExecution(benchmark::State& state) {
  MicroState& micro = State();
  exec::Executor executor(micro.env.db.get());
  size_t year_col = *micro.env.db->FindTable("title")->schema().FindColumn(
      "production_year");
  for (auto _ : state) {
    plan::PhysicalPlan plan(plan::MakeSeqScan(
        "title",
        plan::Predicate::Compare(year_col, plan::CompareOp::kGe, 1960)));
    auto result = executor.Execute(&plan);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(micro.env.db->FindTable("title")->num_rows()));
}
BENCHMARK(BM_SeqScanExecution);

void BM_HashJoinExecution(benchmark::State& state) {
  MicroState& micro = State();
  exec::Executor executor(micro.env.db.get());
  for (auto _ : state) {
    plan::PhysicalPlan plan(plan::MakeSimpleAggregate(
        plan::MakeHashJoin(plan::MakeSeqScan("title", std::nullopt),
                           plan::MakeSeqScan("cast_info", std::nullopt), 0, 1),
        {plan::AggregateExpr{plan::AggFunc::kCount, std::nullopt}}));
    auto result = executor.Execute(&plan);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HashJoinExecution);

void BM_PlannerLatency(benchmark::State& state) {
  MicroState& micro = State();
  optimizer::Planner planner(micro.env.db.get(), &micro.env.stats);
  size_t index = 0;
  for (auto _ : state) {
    const auto& record = micro.records[index++ % micro.records.size()];
    auto plan = planner.Plan(record.query);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlannerLatency);

void BM_ZeroShotFeaturization(benchmark::State& state) {
  MicroState& micro = State();
  featurize::ZeroShotFeaturizer featurizer(
      featurize::CardinalityMode::kEstimated);
  size_t index = 0;
  for (auto _ : state) {
    const auto& record = micro.records[index++ % micro.records.size()];
    auto graph = featurizer.Featurize(*record.plan.root, micro.env);
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_ZeroShotFeaturization);

void BM_ZeroShotInferenceSingle(benchmark::State& state) {
  MicroState& micro = State();
  size_t index = 0;
  for (auto _ : state) {
    std::vector<const train::QueryRecord*> one = {
        &micro.records[index++ % micro.records.size()]};
    auto predictions = micro.model->PredictMs(one);
    benchmark::DoNotOptimize(predictions);
  }
}
BENCHMARK(BM_ZeroShotInferenceSingle);

void BM_ZeroShotInferenceBatch(benchmark::State& state) {
  MicroState& micro = State();
  auto view = train::MakeView(micro.records);
  const size_t chunk =
      g_serve_batch_size == 0 ? view.size() : g_serve_batch_size;
  std::vector<const train::QueryRecord*> slice;
  for (auto _ : state) {
    for (size_t begin = 0; begin < view.size(); begin += chunk) {
      const size_t end = std::min(view.size(), begin + chunk);
      slice.assign(view.begin() + static_cast<ptrdiff_t>(begin),
                   view.begin() + static_cast<ptrdiff_t>(end));
      auto predictions = micro.model->PredictMs(slice);
      benchmark::DoNotOptimize(predictions.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(micro.records.size()));
}
BENCHMARK(BM_ZeroShotInferenceBatch);

// The serving-path headline number: one inference-mode ForwardBatch over N
// featurized plans, swept from single-plan serving (batch 1) to bulk
// workload pricing (batch 64). items_per_second is plans/sec. Fitting
// T(b) = F + L*b on this sweep: per-call overhead F is ~10us after op
// fusion, but the per-plan floor L (~13us: featurization plus model FLOPs
// at near single-core-peak GFLOP/s) dominates, capping the batch-32 vs
// batch-1 ratio near 1.8x — fusion sped batch 1 up *more* than batch 32,
// which lowers the ratio while raising absolute throughput at every batch
// size (see DESIGN.md "Batched serving & prediction cache").
void BM_ForwardBatch(benchmark::State& state) {
  MicroState& micro = State();
  const size_t batch = static_cast<size_t>(state.range(0));
  const std::vector<const train::QueryRecord*> pool =
      train::MakeView(micro.records);
  // Rotate a batch-sized window through the whole record pool so every
  // batch size prices the same plan mix — a fixed window would let batch 1
  // measure whichever single plan it happened to pin.
  size_t offset = 0;
  std::vector<const train::QueryRecord*> view(batch);
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      view[i] = pool[(offset + i) % pool.size()];
    }
    offset = (offset + batch) % pool.size();
    auto predictions = micro.model->ForwardBatch(view);
    benchmark::DoNotOptimize(predictions.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_ForwardBatch)
    ->ArgName("batch")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

// The fast path a fingerprint-cache hit replaces a forward pass with:
// canonical plan hashing plus one LRU lookup under the mutex. All lookups
// hit (the loop re-fingerprints plans inserted during setup), so this is
// the steady-state serving cost per cached plan.
void BM_PredictCacheLookup(benchmark::State& state) {
  MicroState& micro = State();
  zeroshot::PredictCacheOptions options;
  options.capacity = g_cache_capacity;
  zeroshot::PredictCache cache(options);
  for (const auto& record : micro.records) {
    cache.Insert(plan::FingerprintPlan(record.plan), Millis(1.0));
  }
  size_t index = 0;
  for (auto _ : state) {
    const auto& record = micro.records[index++ % micro.records.size()];
    auto hit = cache.Lookup(plan::FingerprintPlan(record.plan));
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictCacheLookup);

void BM_ZeroShotTrainStep(benchmark::State& state) {
  MicroState& micro = State();
  auto view = train::MakeView(micro.records);
  std::vector<const train::QueryRecord*> batch(view.begin(),
                                               view.begin() + 32);
  nn::Adam optimizer(micro.model->Parameters(), 1e-4f);
  Rng rng(4);
  for (auto _ : state) {
    nn::Tensor loss = micro.model->LossOnBatch(batch, true, &rng);
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ZeroShotTrainStep);

// One serving-time feedback sample: q-error + histogram + EWMA drift update.
// This is per executed query, so "cheap" here means < 1us; it also seeds the
// quality.* metrics that bench_summary.py folds into BENCH_micro.json.
void BM_QualityMonitorRecord(benchmark::State& state) {
  obs::MetricsRegistry::Global().set_enabled(true);
  obs::PredictionQualityMonitor monitor;
  Rng rng(11);
  for (auto _ : state) {
    double actual = rng.UniformDouble(0.5, 50.0);
    double predicted = actual * rng.UniformDouble(0.5, 2.0);
    monitor.Record(predicted, actual);
    benchmark::DoNotOptimize(monitor.drifting());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QualityMonitorRecord);

// Quantifies the instrumentation cost claimed in obs/metrics.h: the same
// scan executed with a disabled registry (mode 0, the default state — cost
// should be a relaxed load + branch per operator), an enabled registry
// (mode 1) and an enabled registry plus a query tracer (mode 2).
void BM_ExecutorMetricsOverhead(benchmark::State& state) {
  MicroState& micro = State();
  const int64_t mode = state.range(0);
  obs::MetricsRegistry registry;
  registry.set_enabled(mode >= 1);
  obs::QueryTracer tracer;
  exec::ExecutorOptions options;
  options.metrics = &registry;
  if (mode == 2) options.tracer = &tracer;
  exec::Executor executor(micro.env.db.get(), options);
  size_t year_col = *micro.env.db->FindTable("title")->schema().FindColumn(
      "production_year");
  for (auto _ : state) {
    tracer.Clear();
    plan::PhysicalPlan plan(plan::MakeSeqScan(
        "title",
        plan::Predicate::Compare(year_col, plan::CompareOp::kGe, 1960)));
    auto result = executor.Execute(&plan);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(micro.env.db->FindTable("title")->num_rows()));
}
BENCHMARK(BM_ExecutorMetricsOverhead)
    ->ArgName("disabled0_enabled1_traced2")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

// Whole-training-path throughput: epochs over the 128-record workload with
// the pooled-memory arena, the graph-structure cache and the fused backward
// in play. plans_per_sec is the headline number (plans trained per second of
// process CPU time); allocs_per_batch counts nn-layer heap events (node
// make_shared fallbacks + buffer-pool misses) per minibatch shard-sweep and
// should sit near zero at steady state — the pre-PR fresh-allocation path
// paid hundreds per batch. Batches are counted with the injectable arena
// stats hook (one GraphArena::Reset per shard).
std::atomic<int64_t> g_arena_resets{0};

void BM_TrainEpoch(benchmark::State& state) {
  MicroState& micro = State();
  auto view = train::MakeView(micro.records);
  const size_t threads = static_cast<size_t>(state.range(0));
  const bool pooled = state.range(1) != 0;
  nn::InstallArenaStatsHook(
      [](const nn::ArenaStats&) { g_arena_resets.fetch_add(1); });
  g_arena_resets = 0;
  const nn::AutodiffAllocCounters before = nn::GlobalAllocCounters();
  const size_t kEpochs = 4;
  for (auto _ : state) {
    models::ZeroShotCostModel::Options options;
    options.hidden_dim = 64;
    models::ZeroShotCostModel model(options);
    train::TrainerOptions trainer;
    trainer.max_epochs = kEpochs;
    trainer.early_stop_patience = 1000;
    trainer.validation_fraction = 0.0;
    trainer.num_threads = threads;
    trainer.pooled_memory = pooled;
    train::TrainResult result = train::TrainModel(&model, view, trainer);
    benchmark::DoNotOptimize(result.final_train_loss);
  }
  const nn::AutodiffAllocCounters after = nn::GlobalAllocCounters();
  nn::InstallArenaStatsHook(nullptr);
  const double allocs = static_cast<double>(
      (after.heap_nodes - before.heap_nodes) +
      (after.pool_misses - before.pool_misses));
  // One arena Reset per shard; a batch is a sweep over its shards. The
  // fresh-allocation variant never resets an arena, so fall back to the
  // analytic batch count (iterations x epochs x batches per epoch).
  const double shards_per_batch =
      std::ceil(32.0 / 8.0);  // batch_size / kShardRecords
  double batches = static_cast<double>(g_arena_resets.load()) /
                   std::max(1.0, shards_per_batch);
  if (batches <= 0) {
    batches = static_cast<double>(state.iterations()) * kEpochs *
              std::ceil(static_cast<double>(view.size()) / 32.0);
  }
  state.counters["allocs_per_batch"] = benchmark::Counter(allocs / batches);
  state.counters["plans_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * view.size() * kEpochs),
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(view.size() * kEpochs));
}
BENCHMARK(BM_TrainEpoch)
    ->ArgNames({"threads", "pooled"})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({1, 0})  // fresh-allocation reference: allocs_per_batch contrast
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// The fused Linear backward (single pass: relu mask, dX, dW, dB) across
// batch sizes, under a per-iteration arena epoch — the inner loop of every
// training step, isolated from featurization and the optimizer.
void BM_BackwardFused(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  Rng rng(17);
  std::vector<float> input(batch * dim);
  for (float& v : input) v = static_cast<float>(rng.UniformDouble(-1, 1));
  std::vector<float> weights(dim * dim);
  for (float& v : weights) v = static_cast<float>(rng.UniformDouble(-0.2, 0.2));
  nn::Tensor w = nn::Tensor::Parameter(dim, dim, weights);
  nn::Tensor b = nn::Tensor::Parameter(1, dim, std::vector<float>(dim, 0.1f));
  nn::Tensor v = nn::Tensor::Parameter(dim, 1, std::vector<float>(dim, 0.2f));
  nn::GraphArena arena;
  for (auto _ : state) {
    nn::ArenaGuard guard(&arena);
    {
      nn::Tensor x = nn::Tensor::FromData(batch, dim, input);
      nn::Tensor h = nn::LinearFused(x, w, b, /*fuse_relu=*/true);
      nn::Tensor loss =
          nn::MseLoss(nn::MatMul(h, v), nn::Tensor::Zeros(batch, 1));
      loss.Backward();
      benchmark::DoNotOptimize(w.grad().data());
    }
    w.ZeroGrad();
    b.ZeroGrad();
    v.ZeroGrad();
    arena.Reset();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_BackwardFused)
    ->ArgName("batch")
    ->Arg(8)
    ->Arg(32)
    ->Arg(128);

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<float> data(n * n);
  for (float& v : data) v = static_cast<float>(rng.UniformDouble(-1, 1));
  nn::Tensor a = nn::Tensor::FromData(n, n, data);
  nn::Tensor b = nn::Tensor::FromData(n, n, data);
  for (auto _ : state) {
    nn::Tensor c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(2 * n * n * n));
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(256);

}  // namespace
}  // namespace zerodb

// Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects flags it
// does not know, so --metrics_out, --trace_out, --prom_out and --threads are
// stripped from argv before Initialize.
int main(int argc, char** argv) {
  zerodb::bench::BenchOptions options;
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--metrics_out=", 0) == 0) {
      options.metrics_out = arg.substr(std::string("--metrics_out=").size());
    } else if (arg == "--metrics_out" && i + 1 < argc) {
      options.metrics_out = argv[++i];
    } else if (arg.rfind("--trace_out=", 0) == 0) {
      options.trace_out = arg.substr(std::string("--trace_out=").size());
    } else if (arg == "--trace_out" && i + 1 < argc) {
      options.trace_out = argv[++i];
    } else if (arg.rfind("--prom_out=", 0) == 0) {
      options.prom_out = arg.substr(std::string("--prom_out=").size());
    } else if (arg == "--prom_out" && i + 1 < argc) {
      options.prom_out = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads = zerodb::bench::ApplyThreadsFlag(
          arg.substr(std::string("--threads=").size()));
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = zerodb::bench::ApplyThreadsFlag(argv[++i]);
    } else if (arg.rfind("--cache_capacity=", 0) == 0) {
      zerodb::g_cache_capacity = static_cast<size_t>(std::strtoul(
          arg.substr(std::string("--cache_capacity=").size()).c_str(), nullptr,
          10));
    } else if (arg == "--cache_capacity" && i + 1 < argc) {
      zerodb::g_cache_capacity =
          static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--batch_size=", 0) == 0) {
      zerodb::g_serve_batch_size = static_cast<size_t>(std::strtoul(
          arg.substr(std::string("--batch_size=").size()).c_str(), nullptr,
          10));
    } else if (arg == "--batch_size" && i + 1 < argc) {
      zerodb::g_serve_batch_size =
          static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!options.metrics_out.empty() || !options.prom_out.empty()) {
    zerodb::obs::MetricsRegistry::Global().set_enabled(true);
  }
  if (!options.trace_out.empty()) {
    zerodb::obs::TraceEventRecorder::InstallGlobal();
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (options.metrics_out.empty() && options.trace_out.empty() &&
      options.prom_out.empty()) {
    return 0;
  }
  zerodb::MicroState& micro = zerodb::State();
  return zerodb::bench::MaybeWriteBenchMetrics(
      options, "bench_micro", "micro", micro.env,
      {{"micro_model", &micro.train_result}});
}
