// Reproduces Table 1: Q-errors (median / 95th / max) of the zero-shot cost
// model with exact and estimated cardinalities on the Scale, Synthetic and
// JOB-light workloads, plus the "Index" What-If workload — queries evaluated
// under randomly created attribute indexes on the unseen IMDB database.

#include "bench_common.h"

namespace zerodb::bench {
namespace {

struct Row {
  std::string name;
  train::QErrorStats exact;
  train::QErrorStats estimated;
};

Row EvalRow(ExperimentContext* context, const std::string& name,
            const std::vector<train::QueryRecord>& eval) {
  Row row;
  row.name = name;
  std::vector<double> truth = TruthOf(eval);
  auto view = train::MakeView(eval);
  row.exact =
      train::ComputeQErrors(context->zero_shot_exact->PredictMs(view), truth);
  row.estimated = train::ComputeQErrors(
      context->zero_shot_estimated->PredictMs(view), truth);
  return row;
}

// Generates the Index workload: random attribute indexes are created on the
// unseen database, then only queries whose chosen plan actually uses one of
// the new indexes are kept (the paper's "index would exist for randomly
// selected attributes of queries").
std::vector<train::QueryRecord> CollectIndexWorkload(
    ExperimentContext* context) {
  datagen::DatabaseEnv& imdb = context->imdb;
  // Create a random but fixed set of attribute indexes.
  Rng rng(2024);
  datagen::AddDefaultIndexes(imdb.db.get(), &rng,
                             /*secondary_index_prob=*/0.5);
  imdb.RefreshStats();

  workload::WorkloadConfig config = workload::TrainingWorkloadConfig();
  workload::QueryGenerator generator(&imdb, config, 777);
  std::vector<plan::QuerySpec> queries;
  optimizer::Planner planner(imdb.db.get(), &imdb.stats);
  size_t attempts = 0;
  const size_t target = context->scale.eval_queries;
  while (queries.size() < target && attempts < 40 * target) {
    ++attempts;
    plan::QuerySpec query = generator.Next();
    auto plan = planner.Plan(query);
    if (!plan.ok()) continue;
    bool uses_secondary_index = false;
    plan->root->Visit([&](const plan::PhysicalNode& node) {
      if (node.type == plan::PhysicalOpType::kIndexScan) {
        uses_secondary_index = true;
      }
      if (node.type == plan::PhysicalOpType::kIndexNLJoin) {
        const storage::Table* inner = imdb.db->FindTable(node.table_name);
        if (inner != nullptr &&
            inner->schema().column(node.index_column).name != "id") {
          uses_secondary_index = true;
        }
      }
    });
    if (uses_secondary_index) queries.push_back(std::move(query));
  }
  return train::CollectRecords(imdb, queries, train::CollectOptions());
}

int Run(const BenchOptions& options) {
  ExperimentContext context = BuildContext(
      /*need_exact_model=*/true, /*need_baseline_pool=*/false, &options);

  std::vector<Row> rows;
  std::fprintf(stderr, "[eval] scale workload...\n");
  rows.push_back(EvalRow(&context, "Scale",
                         CollectEvalWorkload(context,
                                             workload::BenchmarkWorkload::kScale)));
  std::fprintf(stderr, "[eval] synthetic workload...\n");
  rows.push_back(EvalRow(
      &context, "Synthetic",
      CollectEvalWorkload(context, workload::BenchmarkWorkload::kSynthetic)));
  std::fprintf(stderr, "[eval] job-light workload...\n");
  rows.push_back(EvalRow(
      &context, "JOB-light",
      CollectEvalWorkload(context, workload::BenchmarkWorkload::kJobLight)));
  std::fprintf(stderr, "[eval] index (what-if) workload...\n");
  rows.push_back(EvalRow(&context, "Index", CollectIndexWorkload(&context)));

  std::printf("Table 1: estimation errors (Q-errors) of zero-shot models for "
              "index tuning (last line)\n");
  std::printf("compared to zero-shot cost models without What-If support "
              "(upper lines). Unseen IMDB, scale=%s.\n\n",
              context.scale.name);
  std::printf("%-10s | %28s | %28s | %5s\n", "Workload",
              "Zero-Shot (Exact Card.)", "Zero-Shot (Estimated Card.)", "n");
  std::printf("%-10s | %8s %8s %8s  | %8s %8s %8s  |\n", "", "median", "95th",
              "max", "median", "95th", "max");
  PrintRule(92);
  for (const Row& row : rows) {
    std::printf("%-10s | %8.2f %8.2f %8.2f  | %8.2f %8.2f %8.2f  | %5zu\n",
                row.name.c_str(), row.exact.median, row.exact.p95,
                row.exact.max, row.estimated.median, row.estimated.p95,
                row.estimated.max, row.exact.count);
  }
  PrintRule(92);

  return MaybeWriteBenchMetrics(
      options, "bench_table1_whatif", context.scale.name, context.imdb,
      {{"zero_shot_estimated", &context.zero_shot_estimated->train_result()},
       {"zero_shot_exact", &context.zero_shot_exact->train_result()}},
      context.zero_shot_estimated.get());
}

}  // namespace
}  // namespace zerodb::bench

int main(int argc, char** argv) {
  return zerodb::bench::Run(zerodb::bench::ParseBenchArgs(argc, argv));
}
