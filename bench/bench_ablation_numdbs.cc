// Ablation A (paper Section 2.2, "Training Data and Uncertainty"): how many
// training databases does a zero-shot model need? Sweeps the number of
// training databases and reports Q-errors on the unseen IMDB database.

#include "bench_common.h"

namespace zerodb::bench {
namespace {

int Run(const BenchOptions& options) {
  SetLogLevel(LogLevel::kWarning);
  ScaleConfig scale = GetScaleConfig();
  std::fprintf(stderr, "[setup] corpus + eval workload...\n");
  auto corpus = datagen::MakeTrainingCorpus(42, scale.num_training_dbs,
                                            scale.corpus_scale);
  auto imdb = datagen::MakeImdbEnv(7, scale.imdb_scale);

  auto config =
      MakeZeroShotConfig(scale, featurize::CardinalityMode::kEstimated);
  std::vector<train::QueryRecord> all_records =
      zeroshot::CollectCorpusRecords(corpus, config);

  auto eval_queries = workload::MakeBenchmark(
      workload::BenchmarkWorkload::kSynthetic, imdb, scale.eval_queries, 1337);
  auto eval = train::CollectRecords(imdb, eval_queries, train::CollectOptions());
  std::vector<double> truth = TruthOf(eval);
  auto eval_view = train::MakeView(eval);

  std::printf("Ablation: zero-shot accuracy vs number of training databases\n");
  std::printf("(synthetic benchmark on unseen IMDB, %zu eval queries, "
              "scale=%s)\n\n",
              eval.size(), scale.name);
  std::printf("%8s %12s %10s %10s %10s\n", "#dbs", "#records", "median",
              "p95", "max");
  PrintRule(56);

  train::TrainResult last_train_result;
  for (size_t num_dbs : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                         scale.num_training_dbs}) {
    if (num_dbs > corpus.size()) break;
    // Keep records of the first `num_dbs` databases.
    std::vector<train::QueryRecord> subset;
    for (const train::QueryRecord& record : all_records) {
      for (size_t d = 0; d < num_dbs; ++d) {
        if (record.db_name == corpus[d].db->name()) {
          train::QueryRecord copy;
          copy.env = record.env;
          copy.db_name = record.db_name;
          copy.query = record.query;
          copy.plan = record.plan.Clone();
          copy.runtime_ms = record.runtime_ms;
          copy.opt_cost = record.opt_cost;
          subset.push_back(std::move(copy));
          break;
        }
      }
    }
    size_t record_count = subset.size();
    zeroshot::ZeroShotEstimator estimator =
        zeroshot::ZeroShotEstimator::TrainFromRecords(std::move(subset),
                                                      config);
    last_train_result = estimator.train_result();
    train::QErrorStats stats =
        train::ComputeQErrors(estimator.PredictMs(eval_view), truth);
    std::printf("%8zu %12zu %10.2f %10.2f %10.2f\n", num_dbs, record_count,
                stats.median, stats.p95, stats.max);
  }
  PrintRule(56);
  std::printf("Expectation (paper): accuracy improves and stabilizes as "
              "databases are added;\na handful of diverse databases already "
              "generalizes.\n");

  return MaybeWriteBenchMetrics(options, "bench_ablation_numdbs", scale.name,
                                imdb, {{"zero_shot_all_dbs",
                                        &last_train_result}});
}

}  // namespace
}  // namespace zerodb::bench

int main(int argc, char** argv) {
  return zerodb::bench::Run(zerodb::bench::ParseBenchArgs(argc, argv));
}
