#ifndef ZERODB_BENCH_FIG4_COMMON_H_
#define ZERODB_BENCH_FIG4_COMMON_H_

#include "bench_common.h"

namespace zerodb::bench {

/// Runs one panel of the paper's Figure 4 for the given benchmark workload:
/// median Q-error of the workload-driven baselines (E2E, MSCN, scaled
/// optimizer cost) as a function of the number of IMDB training queries,
/// against the flat zero-shot lines (estimated / exact cardinalities) that
/// used no IMDB queries at all.
inline int RunFigure4(workload::BenchmarkWorkload which,
                      const BenchOptions& options = BenchOptions()) {
  ExperimentContext context = BuildContext();
  std::fprintf(stderr, "[setup] collecting evaluation workload...\n");
  std::vector<train::QueryRecord> eval = CollectEvalWorkload(context, which);
  std::vector<double> truth = TruthOf(eval);
  auto eval_view = train::MakeView(eval);

  // Zero-shot lines (no IMDB training queries).
  train::QErrorStats zs_estimated = train::ComputeQErrors(
      context.zero_shot_estimated->PredictMs(eval_view), truth);
  train::QErrorStats zs_exact = train::ComputeQErrors(
      context.zero_shot_exact->PredictMs(eval_view), truth);

  std::printf("Figure 4 (%s benchmark on unseen IMDB, %zu eval queries, "
              "scale=%s)\n",
              workload::BenchmarkWorkloadName(which), eval.size(),
              context.scale.name);
  std::printf("Median Q-error vs #IMDB training queries of the "
              "workload-driven models.\n");
  std::printf("Zero-shot models used 0 IMDB queries (trained on %zu other "
              "databases).\n\n",
              context.corpus.size());
  std::printf("%12s %10s %10s %14s %18s %16s\n", "train-queries", "E2E",
              "MSCN", "ScaledOptCost", "ZeroShot(est.)", "ZeroShot(exact)");
  PrintRule(86);

  for (size_t n : context.scale.baseline_training_sizes) {
    if (n > context.imdb_training_pool.size()) break;
    models::E2ECostModel::Options e2e_options;
    e2e_options.hidden_dim = context.scale.hidden_dim;
    models::E2ECostModel e2e(e2e_options);
    train::QErrorStats e2e_stats = EvalNeuralBaseline(
        &e2e, context.imdb_training_pool, n, eval, context.scale.max_epochs);

    models::MscnCostModel::Options mscn_options;
    mscn_options.hidden_dim = context.scale.hidden_dim;
    models::MscnCostModel mscn(mscn_options);
    train::QErrorStats mscn_stats = EvalNeuralBaseline(
        &mscn, context.imdb_training_pool, n, eval, context.scale.max_epochs);

    models::ScaledOptCostModel scaled;
    std::vector<const train::QueryRecord*> fit_view;
    for (size_t i = 0; i < n; ++i) fit_view.push_back(&context.imdb_training_pool[i]);
    scaled.Fit(fit_view);
    train::QErrorStats scaled_stats =
        train::ComputeQErrors(scaled.PredictMs(eval_view), truth);

    std::printf("%12zu %10.2f %10.2f %14.2f %18.2f %16.2f\n", n,
                e2e_stats.median, mscn_stats.median, scaled_stats.median,
                zs_estimated.median, zs_exact.median);
  }
  PrintRule(86);
  std::printf("zero-shot (estimated card.): %s\n",
              zs_estimated.ToString().c_str());
  std::printf("zero-shot (exact card.):     %s\n", zs_exact.ToString().c_str());

  return MaybeWriteBenchMetrics(
      options,
      std::string("bench_fig4_") + workload::BenchmarkWorkloadName(which),
      context.scale.name, context.imdb,
      {{"zero_shot_estimated", &context.zero_shot_estimated->train_result()},
       {"zero_shot_exact", &context.zero_shot_exact->train_result()}},
      context.zero_shot_estimated.get());
}

}  // namespace zerodb::bench

#endif  // ZERODB_BENCH_FIG4_COMMON_H_
