// Query scheduling with zero-shot runtime predictions (paper Section 4.3:
// "zero-shot cost models could be used ... for runtime decisions (e.g.,
// query scheduling)"). Schedules a batch of queries on the unseen database
// with shortest-predicted-job-first and compares mean completion time
// against arrival-order FIFO — using predictions from a model that never
// saw this database.
//
//   $ ./query_scheduling

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/logging.h"
#include "datagen/corpus.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "runtime/simulator.h"
#include "workload/generator.h"
#include "zeroshot/estimator.h"

using namespace zerodb;

namespace {

// Mean completion time when the jobs run one after another in the given
// order (single worker): job i completes at sum of runtimes[0..i].
double MeanCompletionMs(const std::vector<double>& runtimes,
                        const std::vector<size_t>& order) {
  double clock = 0.0;
  double total_completion = 0.0;
  for (size_t job : order) {
    clock += runtimes[job];
    total_completion += clock;
  }
  return total_completion / static_cast<double>(runtimes.size());
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);

  std::printf("Training zero-shot model on 6 databases...\n");
  auto corpus = datagen::MakeTrainingCorpus(42, 6, 0.1);
  zeroshot::ZeroShotConfig config;
  config.queries_per_database = 150;
  config.trainer.max_epochs = 20;
  auto estimator = zeroshot::ZeroShotEstimator::Train(corpus, config);

  auto imdb = datagen::MakeImdbEnv(7, 0.15);
  workload::QueryGenerator generator(&imdb,
                                     workload::TrainingWorkloadConfig(), 61);

  // A batch of 24 queries: predict each, and also measure true runtimes.
  optimizer::Planner planner(imdb.db.get(), &imdb.stats);
  exec::Executor executor(imdb.db.get());
  runtime::RuntimeSimulator simulator;

  std::vector<double> predicted;
  std::vector<double> truth;
  while (predicted.size() < 24) {
    plan::QuerySpec query = generator.Next();
    auto plan = planner.Plan(query);
    if (!plan.ok()) continue;
    auto result = executor.Execute(&*plan);
    if (!result.ok()) continue;
    auto prediction = estimator.EstimateQueryMs(imdb, query);
    if (!prediction.ok()) continue;
    predicted.push_back(prediction->value());
    truth.push_back(simulator.PlanMs(*plan, *result));
  }

  // FIFO (arrival order) vs shortest-predicted-first vs oracle SJF.
  std::vector<size_t> fifo(truth.size());
  std::iota(fifo.begin(), fifo.end(), size_t{0});
  std::vector<size_t> by_prediction = fifo;
  std::sort(by_prediction.begin(), by_prediction.end(),
            [&](size_t a, size_t b) { return predicted[a] < predicted[b]; });
  std::vector<size_t> oracle = fifo;
  std::sort(oracle.begin(), oracle.end(),
            [&](size_t a, size_t b) { return truth[a] < truth[b]; });

  double fifo_ms = MeanCompletionMs(truth, fifo);
  double predicted_ms = MeanCompletionMs(truth, by_prediction);
  double oracle_ms = MeanCompletionMs(truth, oracle);

  std::printf("\nScheduling %zu queries on the unseen IMDB database "
              "(single worker):\n\n",
              truth.size());
  std::printf("  %-38s mean completion time\n", "policy");
  std::printf("  %-38s %12.1f ms\n", "FIFO (arrival order)", fifo_ms);
  std::printf("  %-38s %12.1f ms  (%.2fx better than FIFO)\n",
              "shortest-predicted-first (zero-shot)", predicted_ms,
              fifo_ms / predicted_ms);
  std::printf("  %-38s %12.1f ms  (upper bound)\n",
              "shortest-job-first (oracle)", oracle_ms);
  std::printf("\nThe zero-shot schedule captures %.0f%% of the oracle's "
              "improvement without\nexecuting or profiling a single query "
              "on this database beforehand.\n",
              100.0 * (fifo_ms - predicted_ms) / (fifo_ms - oracle_ms));
  return 0;
}
