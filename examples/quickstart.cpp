// Quickstart: train a zero-shot cost model on a corpus of databases, then
// predict query runtimes on a database it has never seen — without running
// a single training query on it.
//
//   $ ./quickstart

#include <cstdio>

#include "common/logging.h"
#include "datagen/corpus.h"
#include "workload/generator.h"
#include "zeroshot/estimator.h"

using namespace zerodb;  // example code; library code never does this

int main() {
  SetLogLevel(LogLevel::kWarning);

  // 1. A corpus of training databases. In a real deployment these are the
  //    databases (and workload logs) a cloud provider already has.
  std::printf("Generating 6 training databases...\n");
  std::vector<datagen::DatabaseEnv> corpus =
      datagen::MakeTrainingCorpus(/*seed=*/42, /*count=*/6, /*scale=*/0.1);

  // 2. Train the zero-shot model: collect workloads on every training
  //    database (one-time effort), then fit the plan-graph network.
  std::printf("Training zero-shot cost model (one-time effort)...\n");
  zeroshot::ZeroShotConfig config;
  config.queries_per_database = 150;
  config.trainer.max_epochs = 20;
  zeroshot::ZeroShotEstimator estimator =
      zeroshot::ZeroShotEstimator::Train(corpus, config);

  // 3. A completely new database the model has never seen.
  std::printf("Creating an unseen database (IMDB-like)...\n");
  datagen::DatabaseEnv imdb = datagen::MakeImdbEnv(/*seed=*/7, /*scale=*/0.1);

  // 4. Predict runtimes for new queries out of the box — the query is
  //    planned and featurized, nothing is executed.
  workload::QueryGenerator generator(&imdb,
                                     workload::TrainingWorkloadConfig(), 5);
  std::printf("\nPredicted runtimes on the unseen database:\n");
  for (int i = 0; i < 5; ++i) {
    plan::QuerySpec query = generator.Next();
    auto ms = estimator.EstimateQueryMs(imdb, query);
    if (!ms.ok()) continue;
    std::printf("  %7.2f ms   %s\n", ms->value(),
                query.ToSql(*imdb.db).c_str());
  }
  std::printf("\nDone. No training query ever ran on the IMDB database.\n");
  return 0;
}
