// Cost estimation on an unseen database, end to end: trains the zero-shot
// model on many databases, evaluates it on the three IMDB benchmarks, and
// walks through one query in detail (plan, prediction, measured runtime).
//
//   $ ./cost_estimation_unseen_db

#include <cstdio>

#include "common/logging.h"
#include "datagen/corpus.h"
#include "exec/executor.h"
#include "runtime/simulator.h"
#include "train/metrics.h"
#include "workload/benchmarks.h"
#include "zeroshot/estimator.h"

using namespace zerodb;

int main() {
  SetLogLevel(LogLevel::kWarning);

  std::printf("Building corpus (10 databases) and training zero-shot model...\n");
  auto corpus = datagen::MakeTrainingCorpus(42, 10, 0.1);
  zeroshot::ZeroShotConfig config;
  config.queries_per_database = 200;
  config.trainer.max_epochs = 25;
  auto estimator = zeroshot::ZeroShotEstimator::Train(corpus, config);

  auto imdb = datagen::MakeImdbEnv(7, 0.1);

  // --- Accuracy on the three evaluation benchmarks. ---
  std::printf("\nQ-errors on the unseen IMDB database:\n");
  std::printf("%-12s %8s %8s %8s\n", "workload", "median", "p95", "max");
  for (auto which : {workload::BenchmarkWorkload::kScale,
                     workload::BenchmarkWorkload::kSynthetic,
                     workload::BenchmarkWorkload::kJobLight}) {
    auto queries = workload::MakeBenchmark(which, imdb, 120, 99);
    auto eval = train::CollectRecords(imdb, queries, train::CollectOptions());
    auto predictions = estimator.PredictMs(train::MakeView(eval));
    std::vector<double> truth;
    for (const auto& record : eval) truth.push_back(record.runtime_ms);
    auto stats = train::ComputeQErrors(predictions, truth);
    std::printf("%-12s %8.2f %8.2f %8.2f\n",
                workload::BenchmarkWorkloadName(which), stats.median,
                stats.p95, stats.max);
  }

  // --- One query in detail. ---
  auto queries = workload::MakeBenchmark(workload::BenchmarkWorkload::kJobLight,
                                         imdb, 1, 7);
  auto records = train::CollectRecords(imdb, queries, train::CollectOptions());
  if (!records.empty()) {
    const train::QueryRecord& record = records[0];
    std::printf("\nExample query:\n  %s\n", record.query.ToSql(*imdb.db).c_str());
    std::printf("\nChosen physical plan (est = optimizer cardinality "
                "estimate, true = executed):\n%s\n",
                record.plan.root->ToString(*imdb.db).c_str());
    auto prediction = estimator.PredictMs(train::MakeView(records));
    std::printf("\n  zero-shot predicted runtime: %8.2f ms\n", prediction[0].value());
    std::printf("  measured (simulated) runtime: %7.2f ms\n",
                record.runtime_ms);
    std::printf("  optimizer cost metric:        %7.1f (unitless)\n",
                record.opt_cost);
  }
  return 0;
}
