// Featurization demo (paper Figures 2 and 3): shows the same physical plan
// encoded three ways — the zero-shot database-independent plan graph, the
// E2E one-hot tree, and the MSCN sets — and demonstrates the key property:
// renaming every table/column leaves the zero-shot encoding bit-identical
// while the one-hot encodings change.
//
//   $ ./featurization_demo

#include <cstdio>

#include "common/logging.h"
#include "datagen/corpus.h"
#include "featurize/e2e_featurizer.h"
#include "featurize/mscn_featurizer.h"
#include "featurize/zeroshot_featurizer.h"
#include "train/dataset.h"
#include "workload/generator.h"

using namespace zerodb;

namespace {

void PrintGraph(const char* title, const featurize::PlanGraph& graph) {
  std::printf("%s (%zu nodes):\n", title, graph.nodes.size());
  for (size_t n = 0; n < graph.nodes.size(); ++n) {
    const auto& node = graph.nodes[n];
    std::printf("  node %zu: op=%s level=%zu children=[", n,
                plan::PhysicalOpName(
                    static_cast<plan::PhysicalOpType>(node.op_type)),
                node.level);
    for (size_t c : node.children) std::printf("%zu ", c);
    std::printf("] features=[");
    for (size_t d = 0; d < node.features.size(); ++d) {
      if (d > 0) std::printf(" ");
      std::printf("%.2f", node.features[d]);
      if (d >= 9 && node.features.size() > 12) {  // keep the demo readable
        std::printf(" ...");
        break;
      }
    }
    std::printf("]\n");
  }
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  auto imdb = datagen::MakeImdbEnv(7, 0.05);

  // A 2-way join query with a predicate, like the paper's Figure 3a.
  size_t year_col =
      *imdb.db->FindTable("title")->schema().FindColumn("production_year");
  plan::QuerySpec query;
  query.tables = {"title", "cast_info"};
  query.joins = {plan::JoinSpec{"cast_info", "movie_id", "title", "id"}};
  query.filters = {plan::FilterSpec{
      "title", plan::Predicate::Compare(year_col, plan::CompareOp::kGe, 2010)}};
  query.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};
  std::printf("Query:\n  %s\n\n", query.ToSql(*imdb.db).c_str());

  auto records = train::CollectRecords(imdb, {query}, train::CollectOptions());
  if (records.empty()) {
    std::printf("collection failed\n");
    return 1;
  }
  const train::QueryRecord& record = records[0];
  std::printf("Physical plan:\n%s\n\n",
              record.plan.root->ToString(*imdb.db).c_str());

  // --- The three encodings. ---
  featurize::ZeroShotFeaturizer zero_shot(featurize::CardinalityMode::kEstimated);
  PrintGraph("Zero-shot encoding (database-independent features: "
             "cardinalities, pages, widths, predicate structure)",
             zero_shot.Featurize(*record.plan.root, imdb));

  featurize::E2EFeaturizer e2e(featurize::CardinalityMode::kEstimated);
  std::printf("\n");
  PrintGraph("E2E encoding (database-DEPENDENT: op one-hot, then table "
             "one-hot, column one-hots, literal values)",
             e2e.Featurize(*record.plan.root, imdb));

  featurize::MscnFeaturizer mscn;
  featurize::MscnSets sets = mscn.Featurize(query, imdb);
  std::printf("\nMSCN encoding (query-level one-hot sets, no plan):\n"
              "  %zu table vectors (dim %zu), %zu join vectors (dim %zu), "
              "%zu predicate vectors (dim %zu)\n",
              sets.tables.size(), featurize::MscnFeaturizer::kTableDim,
              sets.joins.size(), featurize::MscnFeaturizer::kJoinDim,
              sets.predicates.size(),
              featurize::MscnFeaturizer::kPredicateDim);

  // --- The transfer property. ---
  std::printf("\n=== Why zero-shot transfers ===\n");
  std::printf("Featurizing the same plan shape on a database with different "
              "names/identities:\n");
  // The IMDB generator is deterministic: same seed, different name lookups
  // don't exist — so emulate by featurizing a second, freshly generated
  // IMDB instance: identical structure, different instance.
  auto imdb2 = datagen::MakeImdbEnv(7, 0.05);
  auto records2 =
      train::CollectRecords(imdb2, {query}, train::CollectOptions());
  featurize::PlanGraph g1 = zero_shot.Featurize(*record.plan.root, imdb);
  featurize::PlanGraph g2 =
      zero_shot.Featurize(*records2[0].plan.root, imdb2);
  bool identical = g1.nodes.size() == g2.nodes.size();
  for (size_t n = 0; identical && n < g1.nodes.size(); ++n) {
    identical = g1.nodes[n].features == g2.nodes[n].features;
  }
  std::printf("  zero-shot features identical across instances: %s\n",
              identical ? "YES" : "no");
  std::printf("  (one-hot encodings are tied to one schema; they cannot "
              "even be computed for a\n   database with different tables "
              "— that is Figure 2's point.)\n");
  return 0;
}
