// Bringing your own database: build a Database from CSV data, declare the
// schema and foreign keys, and get zero-shot runtime predictions for SQL
// queries against it — the model was trained before this database existed.
//
//   $ ./custom_database

#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"
#include "datagen/corpus.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "runtime/simulator.h"
#include "sql/parser.h"
#include "storage/csv.h"
#include "zeroshot/estimator.h"

using namespace zerodb;

namespace {

// A little webshop: customers and their orders, as CSV a user might export
// from anywhere. (Inline here; LoadCsv reads files identically.)
constexpr const char* kCustomersCsv =
    "id,age,segment\n"
    "0,34,retail\n1,41,retail\n2,29,business\n3,55,retail\n4,38,business\n"
    "5,45,retail\n6,23,retail\n7,61,business\n8,33,retail\n9,27,retail\n";

std::string OrdersCsv() {
  // 400 orders referencing the 10 customers, skewed toward low ids.
  std::string csv = "id,customers_id,amount\n";
  Rng rng(17);
  for (int i = 0; i < 400; ++i) {
    int64_t customer = rng.UniformInt(0, 9);
    if (rng.Bernoulli(0.5)) customer = customer / 3;  // skew
    csv += StrFormat("%d,%lld,%.2f\n", i, static_cast<long long>(customer),
                     rng.UniformDouble(5.0, 500.0));
  }
  return csv;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);

  // 1. Train once (in production this model ships pre-trained).
  std::printf("Training zero-shot model on 6 unrelated databases...\n");
  auto corpus = datagen::MakeTrainingCorpus(42, 6, 0.1);
  zeroshot::ZeroShotConfig config;
  config.queries_per_database = 150;
  config.trainer.max_epochs = 20;
  auto estimator = zeroshot::ZeroShotEstimator::Train(corpus, config);

  // 2. Assemble the custom database from CSV.
  using catalog::ColumnSchema;
  using catalog::DataType;
  using catalog::TableSchema;
  TableSchema customers_schema(
      "customers", {ColumnSchema{"id", DataType::kInt64, 8},
                    ColumnSchema{"age", DataType::kInt64, 8},
                    ColumnSchema{"segment", DataType::kString, 8}});
  TableSchema orders_schema(
      "orders", {ColumnSchema{"id", DataType::kInt64, 8},
                 ColumnSchema{"customers_id", DataType::kInt64, 8},
                 ColumnSchema{"amount", DataType::kDouble, 8}});

  storage::Database db("webshop");
  auto customers = storage::LoadCsvFromString(kCustomersCsv, customers_schema);
  auto orders = storage::LoadCsvFromString(OrdersCsv(), orders_schema);
  ZDB_CHECK(customers.ok() && orders.ok());
  ZDB_CHECK(db.AddTable(std::move(*customers)).ok());
  ZDB_CHECK(db.AddTable(std::move(*orders)).ok());
  ZDB_CHECK(db.mutable_catalog()
                .AddForeignKey(catalog::ForeignKey{"orders", "customers_id",
                                                   "customers", "id"})
                .ok());
  ZDB_CHECK(db.CreateIndex("customers", "id").ok());  // primary key
  datagen::DatabaseEnv env = datagen::MakeEnv(std::move(db));
  std::printf("Loaded 'webshop': %lld rows across %zu tables from CSV.\n",
              static_cast<long long>(env.db->TotalRows()),
              env.db->tables().size());

  // 3. SQL against the new database, with predictions vs measurements.
  const char* queries[] = {
      "SELECT COUNT(*) FROM orders WHERE amount >= 250;",
      "SELECT COUNT(*), AVG(amount) FROM customers, orders "
      "WHERE orders.customers_id = customers.id AND age >= 35;",
      "SELECT segment, COUNT(*) FROM customers, orders "
      "WHERE orders.customers_id = customers.id AND amount < 100 "
      "GROUP BY segment;",
  };
  optimizer::Planner planner(env.db.get(), &env.stats);
  exec::Executor executor(env.db.get());
  runtime::RuntimeSimulator simulator;

  std::printf("\n%9s %9s   query\n", "predicted", "measured");
  for (const char* text : queries) {
    auto query = sql::ParseQuery(text, *env.db);
    ZDB_CHECK(query.ok()) << query.status().ToString();
    auto predicted = estimator.EstimateQueryMs(env, *query);
    auto plan = planner.Plan(*query);
    ZDB_CHECK(plan.ok());
    auto result = executor.Execute(&*plan);
    ZDB_CHECK(result.ok());
    double measured = simulator.PlanMs(*plan, *result);
    std::printf("%7.2fms %7.2fms   %s\n",
                predicted.ok() ? predicted->value() : -1.0, measured, text);
  }
  std::printf("\nThe model never saw 'webshop' (or anything like it) during "
              "training.\n");
  return 0;
}
