// Physical design tuning with a zero-shot model in "What-If" mode (paper
// Section 4.1): the advisor searches for useful indexes on a database the
// model has never seen, using only hypothetical-index predictions — no
// index is built and no query is executed during the search. The chosen
// indexes are then actually created to verify the improvement.
//
//   $ ./index_advisor

#include <cstdio>

#include "common/logging.h"
#include "datagen/corpus.h"
#include "exec/executor.h"
#include "runtime/simulator.h"
#include "whatif/index_advisor.h"
#include "workload/generator.h"
#include "zeroshot/estimator.h"

using namespace zerodb;

namespace {

// Measures the true (simulated) total runtime of the workload under the
// database's current physical design.
double MeasureWorkloadMs(const datagen::DatabaseEnv& env,
                         const std::vector<plan::QuerySpec>& queries) {
  optimizer::Planner planner(env.db.get(), &env.stats);
  exec::Executor executor(env.db.get());
  runtime::RuntimeSimulator simulator;
  double total = 0.0;
  for (const plan::QuerySpec& query : queries) {
    auto plan = planner.Plan(query);
    if (!plan.ok()) continue;
    auto result = executor.Execute(&*plan);
    if (!result.ok()) continue;
    total += simulator.PlanMs(*plan, *result);
  }
  return total;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);

  std::printf("Training zero-shot model (with index-rich training plans)...\n");
  auto corpus = datagen::MakeTrainingCorpus(42, 8, 0.1);
  zeroshot::ZeroShotConfig config;
  config.queries_per_database = 200;
  config.trainer.max_epochs = 25;
  auto estimator = zeroshot::ZeroShotEstimator::Train(corpus, config);

  auto imdb = datagen::MakeImdbEnv(7, 0.15);

  // An analytics workload on the unseen database.
  workload::WorkloadConfig workload_config;
  workload_config.min_tables = 1;
  workload_config.max_tables = 3;
  workload_config.min_predicates = 1;
  workload_config.max_predicates = 3;
  workload_config.range_predicate_prob = 0.3;
  workload::QueryGenerator generator(&imdb, workload_config, 11);
  std::vector<plan::QuerySpec> workload;
  for (int i = 0; i < 12; ++i) workload.push_back(generator.Next());

  std::printf("\nWorkload (12 queries), for example:\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("  %s\n", workload[i].ToSql(*imdb.db).c_str());
  }

  double before_ms = MeasureWorkloadMs(imdb, workload);

  whatif::IndexAdvisorOptions advisor_options;
  advisor_options.max_indexes = 3;
  whatif::IndexAdvisor advisor(&estimator, advisor_options);
  std::printf("\nSearching index candidates with What-If predictions "
              "(%zu candidates)...\n",
              advisor.EnumerateCandidates(imdb, workload).size());
  whatif::AdvisorResult result = advisor.Recommend(imdb, workload);

  std::printf("\nRecommended indexes:\n");
  for (const auto& index : result.chosen) {
    std::printf("  CREATE INDEX ON %s(%s);\n", index.table.c_str(),
                index.column.c_str());
  }
  std::printf("Predicted workload time: %.1f ms -> %.1f ms (%.2fx)\n",
              result.baseline_total_ms.value(), result.final_total_ms.value(),
              result.baseline_total_ms /
                  std::max(result.final_total_ms, Millis(1e-9)));

  // Verify by actually creating the chosen indexes. AlreadyExists is fine
  // here (the advisor may pick a column that already has one); ignore it.
  for (const auto& index : result.chosen) {
    (void)imdb.db->CreateIndex(index.table, index.column);
  }
  imdb.RefreshStats();
  double after_ms = MeasureWorkloadMs(imdb, workload);
  std::printf("\nMeasured workload time:  %.1f ms -> %.1f ms (%.2fx) after "
              "building the indexes\n",
              before_ms, after_ms, before_ms / std::max(after_ms, 1e-9));
  return 0;
}
