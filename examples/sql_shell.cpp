// An interactive SQL shell over the IMDB-like database with a zero-shot
// cost model in the loop: every query is parsed, planned, gets a runtime
// prediction from a model that never saw this database, and is then
// executed so you can compare prediction against measurement.
//
//   $ ./sql_shell                       # interactive
//   $ echo "SELECT COUNT(*) FROM title;" | ./sql_shell
//
// Commands: \d (schema), \q (quit). Anything else is parsed as SQL.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "common/math_util.h"
#include "datagen/corpus.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "runtime/simulator.h"
#include "sql/parser.h"
#include "workload/generator.h"
#include "zeroshot/estimator.h"

using namespace zerodb;

namespace {

void PrintSchema(const storage::Database& db) {
  for (const storage::Table& table : db.tables()) {
    std::printf("  %s (%zu rows, %lld pages)\n", table.name().c_str(),
                table.num_rows(),
                static_cast<long long>(table.NumPages()));
    for (const auto& column : table.schema().columns()) {
      std::printf("    %-18s %s\n", column.name.c_str(),
                  catalog::DataTypeName(column.type));
    }
  }
}

void PrintBatch(const exec::RowBatch& batch, size_t limit = 10) {
  const size_t rows = std::min(batch.num_rows(), limit);
  for (size_t r = 0; r < rows; ++r) {
    std::printf("  ");
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      std::printf("%12.4g", batch.columns[c][r]);
    }
    std::printf("\n");
  }
  if (batch.num_rows() > limit) {
    std::printf("  ... (%zu rows total)\n", batch.num_rows());
  }
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);

  std::printf("zerodb shell — training zero-shot cost model "
              "(on 6 other databases)...\n");
  auto corpus = datagen::MakeTrainingCorpus(42, 6, 0.1);
  zeroshot::ZeroShotConfig config;
  config.queries_per_database = 150;
  config.trainer.max_epochs = 20;
  auto estimator = zeroshot::ZeroShotEstimator::Train(corpus, config);

  auto imdb = datagen::MakeImdbEnv(7, 0.1);
  optimizer::Planner planner(imdb.db.get(), &imdb.stats);
  exec::Executor executor(imdb.db.get());
  runtime::RuntimeSimulator simulator;

  std::printf("Connected to database 'imdb' (never seen in training).\n");
  std::printf("Type SQL, \\d for schema, \\q to quit.\n\n");

  std::string line;
  while (std::printf("zerodb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line == "\\d") {
      PrintSchema(*imdb.db);
      continue;
    }
    auto query = sql::ParseQuery(line, *imdb.db);
    if (!query.ok()) {
      std::printf("parse error: %s\n", query.status().ToString().c_str());
      continue;
    }
    auto plan = planner.Plan(*query);
    if (!plan.ok()) {
      std::printf("plan error: %s\n", plan.status().ToString().c_str());
      continue;
    }
    auto predicted = estimator.EstimateQueryMs(imdb, *query);
    auto result = executor.Execute(&*plan);
    if (!result.ok()) {
      std::printf("execution error: %s\n",
                  result.status().ToString().c_str());
      continue;
    }
    double measured = simulator.PlanMs(*plan, *result);

    std::printf("\n%s\n\n", plan->root->ToString(*imdb.db).c_str());
    PrintBatch(result->output);
    if (predicted.ok()) {
      std::printf("\n  zero-shot prediction: %8.2f ms   measured: %8.2f ms "
                  "  (q-error %.2f)\n\n",
                  *predicted, measured,
                  QError(*predicted, measured));
    }
  }
  std::printf("\nbye\n");
  return 0;
}
