// An interactive SQL shell over the IMDB-like database with a zero-shot
// cost model in the loop: every query is parsed, planned, gets a runtime
// prediction from a model that never saw this database, and is then
// executed so you can compare prediction against measurement.
//
//   $ ./sql_shell                       # interactive
//   $ echo "SELECT COUNT(*) FROM title;" | ./sql_shell
//
// Commands: \d (schema), \metrics (Prometheus dump), \trace <path> (write
// the last query's operator timeline), \help, \q (quit). Anything else is
// parsed as SQL.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "common/math_util.h"
#include "datagen/corpus.h"
#include "exec/executor.h"
#include "obs/prom.h"
#include "obs/quality.h"
#include "obs/trace.h"
#include "obs/trace_event.h"
#include "optimizer/optimizer.h"
#include "runtime/simulator.h"
#include "sql/parser.h"
#include "workload/generator.h"
#include "zeroshot/estimator.h"

using namespace zerodb;

namespace {

void PrintSchema(const storage::Database& db) {
  for (const storage::Table& table : db.tables()) {
    std::printf("  %s (%zu rows, %lld pages)\n", table.name().c_str(),
                table.num_rows(),
                static_cast<long long>(table.NumPages()));
    for (const auto& column : table.schema().columns()) {
      std::printf("    %-18s %s\n", column.name.c_str(),
                  catalog::DataTypeName(column.type));
    }
  }
}

void PrintBatch(const exec::RowBatch& batch, size_t limit = 10) {
  const size_t rows = std::min(batch.num_rows(), limit);
  for (size_t r = 0; r < rows; ++r) {
    std::printf("  ");
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      std::printf("%12.4g", batch.columns[c][r]);
    }
    std::printf("\n");
  }
  if (batch.num_rows() > limit) {
    std::printf("  ... (%zu rows total)\n", batch.num_rows());
  }
}

void PrintHelp() {
  std::printf(
      "  \\d              show the schema of the connected database\n"
      "  \\metrics        dump the live metrics registry (Prometheus text\n"
      "                  exposition format: executor, planner, zero-shot and\n"
      "                  quality.* prediction-quality series)\n"
      "  \\trace <path>   write the last query's operator span tree as Chrome\n"
      "                  trace-event JSON (open in chrome://tracing or\n"
      "                  ui.perfetto.dev)\n"
      "  \\help           this help\n"
      "  \\q              quit\n"
      "  anything else is parsed as SQL and executed\n");
}

/// Writes `root` (the last query's span tree) as a standalone Chrome
/// trace-event file via a throwaway recorder.
void WriteQueryTrace(const obs::Span& root, const std::string& path) {
  obs::TraceEventRecorder recorder;
  obs::ProjectSpanTree(&recorder, root, "last_query",
                       /*end_ts_us=*/root.duration_ms * 1000.0);
  Status status = recorder.WriteTo(path);
  if (status.ok()) {
    std::printf("wrote %s — open in chrome://tracing or ui.perfetto.dev\n",
                path.c_str());
  } else {
    std::printf("trace write failed: %s\n", status.ToString().c_str());
  }
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  // Live metrics for \metrics: executor/planner/zero-shot instrumentation
  // plus the estimator's quality.* prediction-quality series.
  obs::MetricsRegistry::Global().set_enabled(true);

  std::printf("zerodb shell — training zero-shot cost model "
              "(on 6 other databases)...\n");
  auto corpus = datagen::MakeTrainingCorpus(42, 6, 0.1);
  zeroshot::ZeroShotConfig config;
  config.queries_per_database = 150;
  config.trainer.max_epochs = 20;
  auto estimator = zeroshot::ZeroShotEstimator::Train(corpus, config);

  auto imdb = datagen::MakeImdbEnv(7, 0.1);
  optimizer::Planner planner(imdb.db.get(), &imdb.stats);
  obs::QueryTracer tracer;
  exec::ExecutorOptions exec_options;
  exec_options.tracer = &tracer;
  exec::Executor executor(imdb.db.get(), exec_options);
  runtime::RuntimeSimulator simulator;
  bool have_last_trace = false;
  obs::Span last_trace;

  std::printf("Connected to database 'imdb' (never seen in training).\n");
  std::printf("Type SQL, \\d for schema, \\help for commands, \\q to quit.\n\n");

  std::string line;
  while (std::printf("zerodb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line == "\\d") {
      PrintSchema(*imdb.db);
      continue;
    }
    if (line == "\\help" || line == "\\h") {
      PrintHelp();
      continue;
    }
    if (line == "\\metrics") {
      std::fputs(obs::RenderPrometheus(obs::MetricsRegistry::Global()).c_str(),
                 stdout);
      continue;
    }
    if (line.rfind("\\trace", 0) == 0) {
      std::string path = line.size() > 7 ? line.substr(7) : "";
      while (!path.empty() && path.front() == ' ') path.erase(path.begin());
      if (path.empty()) {
        std::printf("usage: \\trace <path>\n");
      } else if (!have_last_trace) {
        std::printf("no query executed yet — run one first\n");
      } else {
        WriteQueryTrace(last_trace, path);
      }
      continue;
    }
    auto query = sql::ParseQuery(line, *imdb.db);
    if (!query.ok()) {
      std::printf("parse error: %s\n", query.status().ToString().c_str());
      continue;
    }
    auto plan = planner.Plan(*query);
    if (!plan.ok()) {
      std::printf("plan error: %s\n", plan.status().ToString().c_str());
      continue;
    }
    auto predicted = estimator.EstimateQueryMs(imdb, *query);
    tracer.Clear();
    auto result = executor.Execute(&*plan);
    if (!result.ok()) {
      std::printf("execution error: %s\n",
                  result.status().ToString().c_str());
      continue;
    }
    if (!tracer.roots().empty()) {
      last_trace = tracer.roots().front();
      have_last_trace = true;
    }
    double measured = simulator.PlanMs(*plan, *result);

    std::printf("\n%s\n\n", plan->root->ToString(*imdb.db).c_str());
    PrintBatch(result->output);
    if (predicted.ok()) {
      // Every (prediction, measurement) pair feeds the online quality
      // monitor — drift shows up under quality.* in \metrics.
      estimator.RecordFeedback(*predicted, Millis(measured));
      std::printf("\n  zero-shot prediction: %8.2f ms   measured: %8.2f ms "
                  "  (q-error %.2f)%s\n\n",
                  predicted->value(), measured, QError(predicted->value(), measured),
                  estimator.quality_monitor() != nullptr &&
                          estimator.quality_monitor()->drifting()
                      ? "   [quality drift detected]"
                      : "");
    }
  }
  std::printf("\nbye\n");
  return 0;
}
